//===- opt/BugInjection.h - Seeded Table I defects -------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The registry of the 33 seeded optimizer defects reproducing Table I of
/// the paper. Each defect is keyed by its LLVM issue ID, planted in the
/// pass that models the buggy LLVM component, and individually enableable.
/// Miscompilation seeds weaken a transformation's precondition (the
/// translation validator then catches the unsound rewrite on the right
/// mutant); crash seeds raise a simulated optimizer abort.
///
/// Simulated aborts use a C++ exception (OptimizerCrash) so the in-process
/// fuzzing campaign can observe a "crash" and keep running; the real tool's
/// process would die on the assertion and be restarted. This is the one
/// deliberate deviation from the no-exceptions LLVM rule, confined to the
/// crash-simulation path.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_BUGINJECTION_H
#define OPT_BUGINJECTION_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace alive {

/// The 33 Table I defects.
enum class BugId : unsigned {
  // Miscompilations (19).
  PR53252, ///< InstCombine: didn't update predicate in canonicalizeClampLike
  PR50693, ///< InstCombine: missing simplification of opposite shifts of -1
  PR53218, ///< NewGVN: must merge IR flags of removed instruction into leader
  PR55003, ///< AArch64: shl/ashr/shl of undef shifts combined wrongly
  PR55201, ///< AArch64: disguised rotate must apply LHSMask/RHSMask
  PR55129, ///< AArch64: zero-width bitfield extract must emit 0
  PR55271, ///< multiple backends: missing freeze in ISD::ABS expansion
  PR55284, ///< AArch64: or+and miscompile in GlobalISel
  PR55287, ///< AArch64: urem+udiv miscompile in GlobalISel
  PR55296, ///< multiple backends: promoted bits not cleared before urem
  PR55342, ///< AArch64: sext/zext selection in promoted constant
  PR55484, ///< multiple backends: wrong match in MatchBSwapHWordLow
  PR55490, ///< AArch64: another sext/zext selection in promoted constant
  PR55627, ///< AArch64: refine sext/zext selection
  PR55833, ///< AArch64: tryBitfieldExtractOp vs isDef32 conflict
  PR58109, ///< AArch64: wrong code for usub.sat
  PR58321, ///< AArch64: miscompilation of a frozen poison
  PR58431, ///< AArch64: wrong G_ZEXT selection in GISel
  PR59836, ///< InstCombine: peephole precondition too weak ((zext a)*(zext b))
  // Crashes (14).
  PR52884, ///< InstCombine: thwarted by both nuw and nsw on the add
  PR51618, ///< NewGVN: PHI nodes with undef input
  PR56377, ///< VectorCombine: shuffle for extract-extract pattern
  PR56463, ///< InstCombine: calling a function with a bad signature
  PR56945, ///< ConstantFolding: dyn_cast<ConstantInt> fails on poison
  PR56968, ///< InstSimplify: uncovered condition detecting a poison shift
  PR56981, ///< ConstantFolding: assertion is too strong
  PR58423, ///< AArch64: CSEMIIRBuilder reuses removed instructions
  PR58425, ///< AArch64: udiv did not reach the legalizer
  PR59757, ///< TargetLibraryInfo: signature for printf is wrong
  PR64687, ///< AlignmentFromAssumptions: missing corner case
  PR64661, ///< MoveAutoInit: assertion is too strong
  PR72035, ///< SROA: wrong code in AllocaSliceRewriter
  PR72034, ///< VectorCombine: wrong code in scalarizeVPIntrinsic
};

/// Static description of one seeded defect (one Table I row).
struct BugInfo {
  BugId Id;
  const char *IssueId;     ///< "53252"
  const char *Component;   ///< "InstCombine", "AArch64 backend", ...
  const char *Status;      ///< "fixed" / "open"
  bool IsCrash;            ///< crash vs miscompilation
  const char *Description; ///< Table I description text
};

/// The full Table I, in the paper's order.
const std::vector<BugInfo> &bugTable();

/// Looks up a bug's static info.
const BugInfo &bugInfo(BugId Id);

/// Per-campaign injection configuration: the set of seeded defects the
/// simulated compiler-under-test carries. Defaults to all defects disabled
/// (the optimizer is then correct and every TV check must pass).
///
/// This is a value type — every campaign (FuzzerLoop, CampaignEngine
/// worker, test) owns its own copy, so two concurrent campaigns can never
/// cross-contaminate each other's enabled defects, and a context that is
/// not mutated while passes run is safe to share across worker threads.
class BugInjectionContext {
public:
  BugInjectionContext() = default;
  BugInjectionContext(std::initializer_list<BugId> Ids) {
    for (BugId Id : Ids)
      enable(Id);
  }

  void enable(BugId Id) { Mask |= bit(Id); }
  void disable(BugId Id) { Mask &= ~bit(Id); }
  void enableAll();
  void disableAll() { Mask = 0; }
  bool isEnabled(BugId Id) const { return (Mask & bit(Id)) != 0; }
  bool empty() const { return Mask == 0; }

  friend bool operator==(const BugInjectionContext &A,
                         const BugInjectionContext &B) {
    return A.Mask == B.Mask;
  }

private:
  static uint64_t bit(BugId Id) { return uint64_t(1) << unsigned(Id); }
  uint64_t Mask = 0; // one bit per BugId; Table I has 33 rows
};

/// Installs \p Ctx as the calling thread's ambient bug context for the
/// scope's lifetime (restoring the previous one on exit). The deep pass
/// helpers query the ambient context through isBugEnabled(); PassManager
/// installs its campaign's context around every pipeline run, so each
/// worker thread sees exactly its own campaign's defects.
class BugContextScope {
public:
  explicit BugContextScope(const BugInjectionContext *Ctx);
  ~BugContextScope();
  BugContextScope(const BugContextScope &) = delete;
  BugContextScope &operator=(const BugContextScope &) = delete;

private:
  const BugInjectionContext *Prev;
};

/// The calling thread's ambient bug context (null when none is installed).
const BugInjectionContext *activeBugContext();

/// True when \p Id is enabled in the calling thread's ambient context.
bool isBugEnabled(BugId Id);

/// RAII helper for tests: a single-defect context installed as the calling
/// thread's ambient context for the guard's lifetime.
class ScopedBug {
public:
  explicit ScopedBug(BugId Id) : Ctx{Id}, Scope(&Ctx) {}

private:
  BugInjectionContext Ctx;
  BugContextScope Scope;
};

/// A simulated optimizer abort (assertion failure / segfault stand-in).
struct OptimizerCrash {
  BugId Id;
  std::string What;
};

/// Raises a simulated crash for \p Id (only call when the bug is enabled).
[[noreturn]] void optimizerCrash(BugId Id, const std::string &What);

} // namespace alive

#endif // OPT_BUGINJECTION_H
