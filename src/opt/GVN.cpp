//===- opt/GVN.cpp - Global value numbering ---------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hash-based global value numbering pass (the NewGVN stand-in). Pure
/// instructions with identical opcodes and operands are unified under a
/// dominating leader. Hosts two seeded Table I defects:
///
///   53218 (miscompilation): when a duplicate is folded into its leader the
///   poison flags must be INTERSECTED — the union program only guarantees
///   flags both instructions carried. The buggy variant keeps the leader's
///   flags unchanged, which can smuggle nuw/nsw into contexts that do not
///   guarantee them.
///
///   51618 (crash): value-numbering a phi whose incoming list contains
///   undef dereferenced a null expression in the original NewGVN; modeled
///   as a simulated abort.
///
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "opt/BugInjection.h"
#include "opt/OptUtils.h"
#include "opt/Pass.h"
#include "opt/RuleIDs.h"

#include <map>

using namespace alive;

namespace {

/// Structural key for pure scalar expressions.
struct ExprKey {
  unsigned Kind;
  unsigned Subclass; // opcode / predicate / cast op / intrinsic id
  Type *Ty;
  std::vector<const Value *> Ops;

  bool operator<(const ExprKey &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    if (Subclass != O.Subclass)
      return Subclass < O.Subclass;
    if (Ty != O.Ty)
      return Ty < O.Ty;
    return Ops < O.Ops;
  }
};

class GVNPass : public Pass {
public:
  std::string getName() const override { return "gvn"; }

  bool runOnFunction(Function &F) override {
    DominatorTree DT(F);
    std::map<ExprKey, Instruction *> Leaders;
    bool Changed = false;

    // Walk blocks in RPO so leaders are seen before dominated duplicates.
    for (const BasicBlock *BBC : DT.rpo()) {
      auto *BB = const_cast<BasicBlock *>(BBC);
      for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
        Instruction *I = BB->getInst(Idx);

        // Seeded crash 51618: phi with an undef incoming value.
        if (auto *Phi = dyn_cast<PhiNode>(I)) {
          if (isBugEnabled(BugId::PR51618))
            for (unsigned K = 0; K != Phi->getNumIncoming(); ++K)
              if (isa<ConstantUndef>(Phi->getIncomingValue(K)))
                optimizerCrash(BugId::PR51618,
                               "null expression for phi with undef input");
          continue;
        }

        if (!I->isPure() || I->getType()->isVoidTy())
          continue;
        // Freeze is NOT value-numberable: two freezes of the same value may
        // legitimately produce different results. Shuffles carry a mask
        // that is not part of the operand list, so skip them too.
        if (isa<FreezeInst>(I) || isa<ShuffleVectorInst>(I))
          continue;

        ExprKey Key = makeKey(I);
        auto It = Leaders.find(Key);
        if (It == Leaders.end()) {
          Leaders[Key] = I;
          continue;
        }
        Instruction *Leader = It->second;
        if (!DT.dominatesUse(Leader, I, 0) &&
            !(Leader->getParent() == BB && BB->indexOf(Leader) < Idx)) {
          // Leader must dominate the duplicate to replace it.
          continue;
        }

        // Flag merge (Table I bug 53218): intersect poison flags so the
        // leader only promises what both instructions promised. The buggy
        // variant skips the merge and keeps the leader's flags.
        if (auto *LB = dyn_cast<BinaryInst>(Leader)) {
          if (!isBugEnabled(BugId::PR53218)) {
            LB->intersectFlags(*cast<BinaryInst>(I));
            fireRule(RuleID::GVN_FlagIntersect);
          }
        }

        fireRule(RuleID::GVN_Unify);
        replaceAndErase(I, Leader);
        --Idx;
        Changed = true;
      }
    }
    return Changed;
  }

private:
  ExprKey makeKey(const Instruction *I) const {
    ExprKey K;
    K.Kind = (unsigned)I->getKind();
    K.Ty = I->getType();
    K.Subclass = 0;
    for (const Value *Op : cast<User>(I)->operands())
      K.Ops.push_back(Op);

    switch (I->getKind()) {
    case Value::VK_BinaryInst: {
      const auto *B = cast<BinaryInst>(I);
      K.Subclass = B->getBinOp();
      // Commutative operations: canonicalize operand order so a+b and b+a
      // unify. Poison flags deliberately NOT part of the key (that is the
      // point of the flag-merge subtlety).
      if (BinaryInst::isCommutative(B->getBinOp()) && K.Ops[1] < K.Ops[0])
        std::swap(K.Ops[0], K.Ops[1]);
      break;
    }
    case Value::VK_ICmpInst:
      K.Subclass = cast<ICmpInst>(I)->getPredicate();
      break;
    case Value::VK_CastInst:
      K.Subclass = cast<CastInst>(I)->getCastOp();
      break;
    case Value::VK_CallInst:
      K.Subclass = (unsigned)cast<CallInst>(I)->getCallee()->getIntrinsicID();
      break;
    case Value::VK_GEPInst:
      K.Subclass = cast<GEPInst>(I)->isInBounds();
      // Distinguish geps by their source element type (the result type is
      // always ptr).
      K.Ty = cast<GEPInst>(I)->getSourceElementType();
      break;
    default:
      break;
    }
    return K;
  }
};

} // namespace

std::unique_ptr<Pass> alive::createGVNPass() {
  return std::make_unique<GVNPass>();
}
