//===- opt/InstCombine.cpp - Peephole combining ----------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The InstCombine stand-in: a worklist of peephole rewrites modeled on
/// real InstCombine rules. Hosts five seeded Table I defects:
///
///   53252 (miscompile): canonicalizeClampLike forgets to update the
///     predicate when the range compare arrives negated through
///     "xor %cmp, true" — the exact shape of the paper's Figure 1.
///   50693 (miscompile): "opposite shifts of -1" folded to -1 instead of
///     to (-1 lshr x).
///   59836 (miscompile): the (zext a) * (zext b) no-overflow inference
///     skips its width precondition and plants nuw wrongly.
///   52884 (crash): smax range analysis chokes when the feeding add
///     carries BOTH nuw and nsw (paper Listing 15).
///   56463 (crash): a call argument with a "bad signature" (poison
///     pointer) crashes call simplification.
///
//===----------------------------------------------------------------------===//

#include "analysis/KnownBits.h"
#include "opt/BugInjection.h"
#include "opt/OptUtils.h"
#include "opt/Pass.h"
#include "opt/RuleIDs.h"

using namespace alive;

namespace {

class InstCombinePass : public Pass {
public:
  std::string getName() const override { return "instcombine"; }

  bool runOnFunction(Function &F) override {
    M = F.getParent();
    bool Changed = false;
    bool LocalChange = true;
    unsigned Rounds = 0;
    while (LocalChange && Rounds++ < 8) {
      LocalChange = false;
      for (BasicBlock *BB : F.blocks()) {
        for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
          Instruction *I = BB->getInst(Idx);
          if (I->isTerminator())
            continue;
          if (combine(I, BB, Idx)) {
            LocalChange = Changed = true;
            // Restart the block: positions may have shifted.
            Idx = (unsigned)-1;
          }
        }
      }
      Changed |= removeDeadInstructions(F);
    }
    return Changed;
  }

private:
  Module *M = nullptr;

  /// Inserts \p NewI immediately before position \p Idx in \p BB.
  Instruction *insertBefore(BasicBlock *BB, unsigned Idx,
                            std::unique_ptr<Instruction> NewI) {
    return BB->insert(Idx, std::move(NewI));
  }

  ConstantInt *intC(Type *Ty, const APInt &V) {
    return M->getConstants().getInt(cast<IntegerType>(Ty), V);
  }

  bool combine(Instruction *I, BasicBlock *BB, unsigned Idx);
  bool combineBinary(BinaryInst *B, BasicBlock *BB, unsigned Idx);
  bool combineICmp(ICmpInst *C, BasicBlock *BB, unsigned Idx);
  bool combineSelect(SelectInst *S, BasicBlock *BB, unsigned Idx);
  bool combineCast(CastInst *C, BasicBlock *BB, unsigned Idx);
  bool combineCall(CallInst *C, BasicBlock *BB, unsigned Idx);
};

bool InstCombinePass::combine(Instruction *I, BasicBlock *BB, unsigned Idx) {
  switch (I->getKind()) {
  case Value::VK_BinaryInst:
    return combineBinary(cast<BinaryInst>(I), BB, Idx);
  case Value::VK_ICmpInst:
    return combineICmp(cast<ICmpInst>(I), BB, Idx);
  case Value::VK_SelectInst:
    return combineSelect(cast<SelectInst>(I), BB, Idx);
  case Value::VK_CastInst:
    return combineCast(cast<CastInst>(I), BB, Idx);
  case Value::VK_CallInst:
    return combineCall(cast<CallInst>(I), BB, Idx);
  default:
    return false;
  }
}

bool InstCombinePass::combineBinary(BinaryInst *B, BasicBlock *BB,
                                    unsigned Idx) {
  if (!B->getType()->isIntegerTy())
    return false;
  Value *L = B->getLHS(), *R = B->getRHS();
  unsigned W = B->getType()->getIntegerBitWidth();
  const ConstantInt *RC = matchConstInt(R);
  const ConstantInt *LC = matchConstInt(L);

  // Canonicalize constants to the RHS of commutative operations.
  if (BinaryInst::isCommutative(B->getBinOp()) && LC && !RC) {
    B->setOperand(0, R);
    B->setOperand(1, L);
    fireRule(RuleID::IC_CommuteConst);
    return true;
  }

  switch (B->getBinOp()) {
  case BinaryInst::Add: {
    // add x, x -> shl x, 1 (nuw/nsw carry over). Not at width 1: there
    // the shift amount equals the bit width, so the shl is always poison
    // while add i1 x, x is 0 for x = 0.
    if (L == R && W > 1) {
      auto *Shl = new BinaryInst(BinaryInst::Shl, L,
                                 intC(B->getType(), APInt(W, 1)));
      Shl->setNUW(B->hasNUW());
      Shl->setNSW(B->hasNSW());
      Shl->setName(B->getName());
      insertBefore(BB, Idx, std::unique_ptr<Instruction>(Shl));
      replaceAndErase(B, Shl);
      fireRule(RuleID::IC_AddSelfShl);
      return true;
    }
    // add (xor x, -1), 1 -> sub 0, x.
    if (auto *X = dyn_cast<BinaryInst>(L)) {
      if (X->getBinOp() == BinaryInst::Xor && RC && RC->isOne()) {
        const ConstantInt *AllOnes = matchConstInt(X->getRHS());
        if (AllOnes && AllOnes->isAllOnes()) {
          auto *Neg = new BinaryInst(
              BinaryInst::Sub, intC(B->getType(), APInt::getZero(W)),
              X->getLHS());
          Neg->setName(B->getName());
          insertBefore(BB, Idx, std::unique_ptr<Instruction>(Neg));
          replaceAndErase(B, Neg);
          fireRule(RuleID::IC_AddNotToSub);
          return true;
        }
      }
    }
    // add (add x, C1), C2 -> add x, (C1+C2), dropping flags.
    if (RC) {
      if (auto *Inner = dyn_cast<BinaryInst>(L)) {
        const ConstantInt *C1 = matchConstInt(Inner->getRHS());
        if (Inner->getBinOp() == BinaryInst::Add && C1) {
          B->setOperand(0, Inner->getLHS());
          B->setOperand(1,
                        intC(B->getType(), C1->getValue() + RC->getValue()));
          B->clearFlags();
          fireRule(RuleID::IC_AddConstMerge);
          return true;
        }
      }
    }
    break;
  }
  case BinaryInst::Sub: {
    // (x + y) - y -> x  (more defined than the sub: refinement).
    if (auto *AddI = dyn_cast<BinaryInst>(L)) {
      if (AddI->getBinOp() == BinaryInst::Add) {
        if (AddI->getRHS() == R) {
          replaceAndErase(B, AddI->getLHS());
          fireRule(RuleID::IC_SubOfAdd);
          return true;
        }
        if (AddI->getLHS() == R) {
          replaceAndErase(B, AddI->getRHS());
          fireRule(RuleID::IC_SubOfAdd);
          return true;
        }
      }
    }
    break;
  }
  case BinaryInst::Mul: {
    // mul x, 2^C -> shl x, C (flags carry over).
    if (RC && RC->getValue().isPowerOf2() && !RC->isOne()) {
      auto *Shl = new BinaryInst(
          BinaryInst::Shl, L,
          intC(B->getType(), APInt(W, RC->getValue().logBase2())));
      Shl->setNUW(B->hasNUW());
      Shl->setNSW(B->hasNSW());
      Shl->setName(B->getName());
      insertBefore(BB, Idx, std::unique_ptr<Instruction>(Shl));
      replaceAndErase(B, Shl);
      fireRule(RuleID::IC_MulPow2Shl);
      return true;
    }
    // (zext a) * (zext b) cannot overflow unsigned when the source widths
    // sum to at most the result width: infer nuw. Table I bug 59836: "the
    // precondition of a peephole optimization is too weak" — the buggy
    // variant skips the width check entirely.
    if (!B->hasNUW()) {
      auto *ZL = dyn_cast<CastInst>(L);
      auto *ZR = dyn_cast<CastInst>(R);
      if (ZL && ZR && ZL->getCastOp() == CastInst::ZExt &&
          ZR->getCastOp() == CastInst::ZExt) {
        unsigned S1 = ZL->getSrc()->getType()->getIntegerBitWidth();
        unsigned S2 = ZR->getSrc()->getType()->getIntegerBitWidth();
        bool Sound = S1 + S2 <= W;
        if (Sound || isBugEnabled(BugId::PR59836)) {
          B->setNUW(true);
          fireRule(RuleID::IC_MulZextNuw);
          return true;
        }
      }
    }
    break;
  }
  case BinaryInst::UDiv:
    // udiv x, 2^C -> lshr x, C (exact carries over).
    if (RC && RC->getValue().isPowerOf2() && !RC->isOne()) {
      auto *Shr = new BinaryInst(
          BinaryInst::LShr, L,
          intC(B->getType(), APInt(W, RC->getValue().logBase2())));
      Shr->setExact(B->isExact());
      Shr->setName(B->getName());
      insertBefore(BB, Idx, std::unique_ptr<Instruction>(Shr));
      replaceAndErase(B, Shr);
      fireRule(RuleID::IC_UDivPow2LShr);
      return true;
    }
    break;
  case BinaryInst::URem:
    // urem x, 2^C -> and x, 2^C-1.
    if (RC && RC->getValue().isPowerOf2() && !RC->isOne()) {
      auto *And = new BinaryInst(
          BinaryInst::And, L,
          intC(B->getType(), RC->getValue() - APInt::getOne(W)));
      And->setName(B->getName());
      insertBefore(BB, Idx, std::unique_ptr<Instruction>(And));
      replaceAndErase(B, And);
      fireRule(RuleID::IC_URemPow2And);
      return true;
    }
    break;
  case BinaryInst::Xor: {
    // xor (xor x, -1), -1 -> x.
    if (RC && RC->isAllOnes()) {
      if (auto *Inner = dyn_cast<BinaryInst>(L)) {
        const ConstantInt *IC = matchConstInt(Inner->getRHS());
        if (Inner->getBinOp() == BinaryInst::Xor && IC && IC->isAllOnes()) {
          replaceAndErase(B, Inner->getLHS());
          fireRule(RuleID::IC_XorSelfZero);
          return true;
        }
      }
    }
    // (x ^ y) ^ y -> x.
    if (auto *Inner = dyn_cast<BinaryInst>(L)) {
      if (Inner->getBinOp() == BinaryInst::Xor) {
        if (Inner->getRHS() == R) {
          replaceAndErase(B, Inner->getLHS());
          fireRule(RuleID::IC_XorChainCancel);
          return true;
        }
        if (Inner->getLHS() == R) {
          replaceAndErase(B, Inner->getRHS());
          fireRule(RuleID::IC_XorChainCancel);
          return true;
        }
      }
    }
    break;
  }
  case BinaryInst::And: {
    // x & (x | y) -> x (absorption).
    if (auto *OrI = dyn_cast<BinaryInst>(R))
      if (OrI->getBinOp() == BinaryInst::Or &&
          (OrI->getLHS() == L || OrI->getRHS() == L)) {
        replaceAndErase(B, L);
        fireRule(RuleID::IC_AndAbsorb);
        return true;
      }
    if (auto *OrI = dyn_cast<BinaryInst>(L))
      if (OrI->getBinOp() == BinaryInst::Or &&
          (OrI->getLHS() == R || OrI->getRHS() == R)) {
        replaceAndErase(B, R);
        fireRule(RuleID::IC_AndAbsorb);
        return true;
      }
    break;
  }
  case BinaryInst::Or: {
    // x | (x & y) -> x.
    if (auto *AndI = dyn_cast<BinaryInst>(R))
      if (AndI->getBinOp() == BinaryInst::And &&
          (AndI->getLHS() == L || AndI->getRHS() == L)) {
        replaceAndErase(B, L);
        fireRule(RuleID::IC_OrAbsorb);
        return true;
      }
    // or of disjoint values -> add is not done here; instead: if no common
    // bits, keep (canonical). Nothing.
    break;
  }
  case BinaryInst::LShr: {
    // lshr (shl -1, x), x: Table I bug 50693, "missing a simplification of
    // the opposite shifts of -1". Correct: (-1 << x) >> x == -1 >> x.
    // Buggy: folded to -1.
    if (auto *ShlI = dyn_cast<BinaryInst>(L)) {
      const ConstantInt *AllOnes = matchConstInt(ShlI->getLHS());
      if (ShlI->getBinOp() == BinaryInst::Shl && AllOnes &&
          AllOnes->isAllOnes() && ShlI->getRHS() == R && !ShlI->hasNUW() &&
          !ShlI->hasNSW() && !B->isExact()) {
        if (isBugEnabled(BugId::PR50693)) {
          replaceAndErase(B, intC(B->getType(), APInt::getAllOnes(W)));
          fireRule(RuleID::IC_LShrShlAllOnes);
          return true;
        }
        auto *Shr = new BinaryInst(BinaryInst::LShr,
                                   intC(B->getType(), APInt::getAllOnes(W)),
                                   R);
        Shr->setName(B->getName());
        insertBefore(BB, Idx, std::unique_ptr<Instruction>(Shr));
        replaceAndErase(B, Shr);
        fireRule(RuleID::IC_LShrShlAllOnes);
        return true;
      }
    }
    // (x << C) >>u C -> x & (-1 >>u C).
    if (RC && RC->getValue().ult(APInt(W, W))) {
      if (auto *ShlI = dyn_cast<BinaryInst>(L)) {
        const ConstantInt *SC = matchConstInt(ShlI->getRHS());
        if (ShlI->getBinOp() == BinaryInst::Shl && SC &&
            SC->getValue() == RC->getValue() && !B->isExact()) {
          unsigned C = (unsigned)RC->getValue().getZExtValue();
          auto *And = new BinaryInst(
              BinaryInst::And, ShlI->getLHS(),
              intC(B->getType(), APInt::getLowBitsSet(W, W - C)));
          And->setName(B->getName());
          insertBefore(BB, Idx, std::unique_ptr<Instruction>(And));
          replaceAndErase(B, And);
          fireRule(RuleID::IC_ShlLShrToAnd);
          return true;
        }
      }
    }
    break;
  }
  default:
    break;
  }

  // add x, y with no common bits -> or x, y (canonical in LLVM; enables
  // further bit tricks). Sound thanks to KnownBits.
  if (B->getBinOp() == BinaryInst::Add && !B->hasNUW() && !B->hasNSW() &&
      haveNoCommonBits(L, R)) {
    auto *Or = new BinaryInst(BinaryInst::Or, L, R);
    Or->setName(B->getName());
    insertBefore(BB, Idx, std::unique_ptr<Instruction>(Or));
    replaceAndErase(B, Or);
    fireRule(RuleID::IC_AddNoCommonBitsOr);
    return true;
  }
  return false;
}

bool InstCombinePass::combineICmp(ICmpInst *C, BasicBlock *BB, unsigned Idx) {
  // Canonicalize: constant to the RHS.
  if (isa<ConstantInt>(C->getLHS()) && !isa<Constant>(C->getRHS())) {
    Value *L = C->getLHS(), *R = C->getRHS();
    C->setOperand(0, R);
    C->setOperand(1, L);
    C->setPredicate(ICmpInst::getSwappedPredicate(C->getPredicate()));
    fireRule(RuleID::IC_ICmpCommute);
    return true;
  }
  if (!C->getLHS()->getType()->isIntegerTy())
    return false;
  unsigned W = C->getLHS()->getType()->getIntegerBitWidth();
  const ConstantInt *RC = matchConstInt(C->getRHS());

  // icmp ugt x, C -> icmp uge x, C+1 is NOT canonical in LLVM; instead
  // canonicalize strict vs non-strict: uge x, C -> ugt x, C-1 (C != 0).
  if (RC) {
    const APInt &V = RC->getValue();
    switch (C->getPredicate()) {
    case ICmpInst::UGE:
      if (!V.isZero()) {
        C->setPredicate(ICmpInst::UGT);
        C->setOperand(1, intC(C->getLHS()->getType(),
                              V - APInt::getOne(W)));
        fireRule(RuleID::IC_ICmpStrictness);
        return true;
      }
      break;
    case ICmpInst::ULE:
      if (!V.isAllOnes()) {
        C->setPredicate(ICmpInst::ULT);
        C->setOperand(1,
                      intC(C->getLHS()->getType(), V + APInt::getOne(W)));
        fireRule(RuleID::IC_ICmpStrictness);
        return true;
      }
      break;
    case ICmpInst::SGE:
      if (!V.isSignedMinValue()) {
        C->setPredicate(ICmpInst::SGT);
        C->setOperand(1, intC(C->getLHS()->getType(),
                              V - APInt::getOne(W)));
        fireRule(RuleID::IC_ICmpStrictness);
        return true;
      }
      break;
    case ICmpInst::SLE:
      if (!V.isSignedMaxValue()) {
        C->setPredicate(ICmpInst::SLT);
        C->setOperand(1,
                      intC(C->getLHS()->getType(), V + APInt::getOne(W)));
        fireRule(RuleID::IC_ICmpStrictness);
        return true;
      }
      break;
    default:
      break;
    }

    // icmp eq/ne (and x, 2^k), 0 -> test of a single bit stays canonical;
    // icmp ult (add x, C1), C2 -> range check canonicalization is handled
    // in the clamp combine below.
  }
  return false;
}

bool InstCombinePass::combineSelect(SelectInst *S, BasicBlock *BB,
                                    unsigned Idx) {
  Value *Cond = S->getCondition();

  // select (xor c, true), a, b -> select c, b, a. Hosts Table I bug 53252:
  // the clamp canonicalization "didn't update the predicate" when the
  // compare arrived negated; the buggy variant swaps the condition but NOT
  // the arms, which is exactly a forgotten negation.
  if (auto *X = dyn_cast<BinaryInst>(Cond)) {
    if (X->getBinOp() == BinaryInst::Xor &&
        matchSpecificInt(X->getRHS(), 1) && X->getType()->isBoolTy()) {
      if (isBugEnabled(BugId::PR53252)) {
        // Buggy: drop the negation without swapping the arms (only when
        // this feeds a clamp-like shape: one arm is itself a select fed by
        // a signed compare — the canonicalizeClampLike entry condition).
        bool ClampLike = isa<SelectInst>(S->getTrueValue()) ||
                         isa<SelectInst>(S->getFalseValue());
        if (ClampLike) {
          S->setOperand(0, X->getLHS());
          fireRule(RuleID::IC_SelectNegCond);
          return true;
        }
      }
      Value *T = S->getTrueValue(), *F = S->getFalseValue();
      S->setOperand(0, X->getLHS());
      S->setOperand(1, F);
      S->setOperand(2, T);
      fireRule(RuleID::IC_SelectNegCond);
      return true;
    }
  }

  // select c, x, x handled by instsimplify. select c, true, false -> c;
  // select c, false, true -> xor c, true (i1 only).
  if (S->getType()->isBoolTy()) {
    const ConstantInt *T = matchConstInt(S->getTrueValue());
    const ConstantInt *F = matchConstInt(S->getFalseValue());
    if (T && F && T->isOne() && F->isZero()) {
      replaceAndErase(S, Cond);
      fireRule(RuleID::IC_SelectBoolId);
      return true;
    }
    if (T && F && T->isZero() && F->isOne()) {
      auto *Not = new BinaryInst(BinaryInst::Xor, Cond,
                                 intC(S->getType(), APInt(1, 1)));
      Not->setName(S->getName());
      insertBefore(BB, Idx, std::unique_ptr<Instruction>(Not));
      replaceAndErase(S, Not);
      fireRule(RuleID::IC_SelectBoolNot);
      return true;
    }
  }

  // select (icmp slt x, 0), (sub 0, x), x -> abs-like: leave for Lowering.
  return false;
}

bool InstCombinePass::combineCast(CastInst *C, BasicBlock *BB, unsigned Idx) {
  auto *Inner = dyn_cast<CastInst>(C->getSrc());
  if (!Inner)
    return false;
  unsigned OuterW = C->getType()->getIntegerBitWidth();
  unsigned MidW = Inner->getType()->getIntegerBitWidth();
  unsigned InnerW = Inner->getSrc()->getType()->getIntegerBitWidth();
  Value *X = Inner->getSrc();
  (void)MidW;

  auto rewrite = [&](CastInst::CastOp Op) {
    auto *NewC = new CastInst(Op, X, C->getType());
    NewC->setName(C->getName());
    insertBefore(BB, Idx, std::unique_ptr<Instruction>(NewC));
    replaceAndErase(C, NewC);
    fireRule(RuleID::IC_CastChain);
    return true;
  };

  // zext(zext(x)) -> zext(x); sext(sext(x)) -> sext(x);
  // sext(zext(x)) -> zext(x); trunc chains; trunc(zext/sext) mixed.
  switch (C->getCastOp()) {
  case CastInst::ZExt:
    if (Inner->getCastOp() == CastInst::ZExt)
      return rewrite(CastInst::ZExt);
    break;
  case CastInst::SExt:
    if (Inner->getCastOp() == CastInst::SExt)
      return rewrite(CastInst::SExt);
    if (Inner->getCastOp() == CastInst::ZExt)
      return rewrite(CastInst::ZExt); // high bit known zero
    break;
  case CastInst::Trunc:
    if (Inner->getCastOp() == CastInst::Trunc)
      return rewrite(CastInst::Trunc);
    if (Inner->getCastOp() == CastInst::ZExt ||
        Inner->getCastOp() == CastInst::SExt) {
      if (OuterW == InnerW) {
        replaceAndErase(C, X);
        fireRule(RuleID::IC_CastChain);
        return true;
      }
      if (OuterW < InnerW)
        return rewrite(CastInst::Trunc);
      // OuterW > InnerW: the extension survives, narrowed.
      return rewrite(Inner->getCastOp());
    }
    break;
  }
  return false;
}

bool InstCombinePass::combineCall(CallInst *C, BasicBlock *BB, unsigned Idx) {
  Function *Callee = C->getCallee();

  // Seeded crash 56463: "calling a function with a bad signature" — the
  // analog trigger is a call argument whose value is a poison pointer.
  if (isBugEnabled(BugId::PR56463))
    for (unsigned K = 0; K != C->getNumArgs(); ++K)
      if (isa<ConstantPoison>(C->getArg(K)) &&
          C->getArg(K)->getType()->isPointerTy())
        optimizerCrash(BugId::PR56463,
                       "rebuilding call to @" + Callee->getName() +
                           " with mismatched signature");

  if (!Callee->isIntrinsic())
    return false;
  IntrinsicID ID = Callee->getIntrinsicID();
  if (!C->getType()->isIntegerTy())
    return false;
  unsigned W = C->getType()->getIntegerBitWidth();

  // Seeded crash 52884: smax whose first operand is an add carrying BOTH
  // nuw and nsw (paper Listing 15: "InstCombine is expecting InstSimplify
  // to squash the pattern ... the analysis got thwarted").
  if (ID == IntrinsicID::SMax && isBugEnabled(BugId::PR52884)) {
    if (auto *AddI = dyn_cast<BinaryInst>(C->getArg(0)))
      if (AddI->getBinOp() == BinaryInst::Add && AddI->hasNUW() &&
          AddI->hasNSW() && matchConstInt(C->getArg(1)))
        optimizerCrash(BugId::PR52884,
                       "smax range analysis on add with nuw+nsw");
  }

  switch (ID) {
  case IntrinsicID::SMin:
  case IntrinsicID::SMax:
  case IntrinsicID::UMin:
  case IntrinsicID::UMax: {
    Value *A = C->getArg(0), *Bv = C->getArg(1);
    if (A == Bv) {
      replaceAndErase(C, A);
      fireRule(RuleID::IC_MinMaxSame);
      return true;
    }
    const ConstantInt *BC = matchConstInt(Bv);
    if (BC) {
      const APInt &V = BC->getValue();
      bool Identity =
          (ID == IntrinsicID::SMax && V.isSignedMinValue()) ||
          (ID == IntrinsicID::SMin && V.isSignedMaxValue()) ||
          (ID == IntrinsicID::UMax && V.isZero()) ||
          (ID == IntrinsicID::UMin && V.isAllOnes());
      if (Identity) {
        replaceAndErase(C, A);
        fireRule(RuleID::IC_MinMaxIdentity);
        return true;
      }
      bool Absorbing =
          (ID == IntrinsicID::SMax && V.isSignedMaxValue()) ||
          (ID == IntrinsicID::SMin && V.isSignedMinValue()) ||
          (ID == IntrinsicID::UMax && V.isAllOnes()) ||
          (ID == IntrinsicID::UMin && V.isZero());
      if (Absorbing) {
        // Result is the constant — but only when A is not poison; folding
        // to the constant refines poison away, which is legal.
        replaceAndErase(C, intC(C->getType(), V));
        fireRule(RuleID::IC_MinMaxAbsorb);
        return true;
      }
    }
    return false;
  }
  case IntrinsicID::BSwap: {
    // bswap(bswap(x)) -> x.
    if (auto *InnerCall = dyn_cast<CallInst>(C->getArg(0)))
      if (InnerCall->getCallee()->getIntrinsicID() == IntrinsicID::BSwap) {
        replaceAndErase(C, InnerCall->getArg(0));
        fireRule(RuleID::IC_BswapBswap);
        return true;
      }
    return false;
  }
  case IntrinsicID::UAddSat: {
    // uadd.sat(x, 0) -> x.
    if (matchSpecificInt(C->getArg(1), 0)) {
      replaceAndErase(C, C->getArg(0));
      fireRule(RuleID::IC_UAddSatZero);
      return true;
    }
    return false;
  }
  case IntrinsicID::USubSat: {
    if (matchSpecificInt(C->getArg(1), 0)) {
      replaceAndErase(C, C->getArg(0));
      fireRule(RuleID::IC_USubSatFold);
      return true;
    }
    // usub.sat(x, x) -> 0.
    if (C->getArg(0) == C->getArg(1)) {
      replaceAndErase(C, intC(C->getType(), APInt::getZero(W)));
      fireRule(RuleID::IC_USubSatFold);
      return true;
    }
    return false;
  }
  default:
    return false;
  }
}

} // namespace

std::unique_ptr<Pass> alive::createInstCombinePass() {
  return std::make_unique<InstCombinePass>();
}
