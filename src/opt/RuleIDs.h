//===- opt/RuleIDs.h - Stable per-rule fire IDs ----------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable identifiers for the individual rewrite rules inside the seeded
/// optimizer passes (InstCombine, GVN, ScalarPasses, Lowering), plus a
/// thread-local ambient sink the fuzzing loop installs to collect "which
/// rules fired" coverage for one optimize run.
///
/// Stability contract (relied on by the feedback subsystem, checkpoints and
/// the run report): a RuleID's numeric value and its ruleName() slug are
/// FROZEN once released. New rules are appended before NumRules, never
/// inserted, renumbered or renamed — a checkpoint written by an older build
/// must decode to the same rule set under a newer one. Removing a rule from
/// a pass retires its ID (the slot stays reserved and simply never fires).
///
/// The sink follows the same ambient thread-local pattern as
/// BugContextScope: installing a scope costs one pointer swap, and with no
/// scope installed fireRule() is a single predictable-branch load — the
/// blind (-feedback=off) path pays essentially nothing.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_RULEIDS_H
#define OPT_RULEIDS_H

#include <cstdint>

namespace alive {

/// One bit per rewrite rule. Values are append-only — see the stability
/// contract in the file comment.
enum class RuleID : unsigned {
  // InstCombine
  IC_CommuteConst = 0,   ///< constant operand canonicalized to the RHS
  IC_AddSelfShl,         ///< add x, x -> shl x, 1
  IC_AddNotToSub,        ///< add (xor x, -1), 1 -> sub 0, x
  IC_AddConstMerge,      ///< (x + C1) + C2 -> x + (C1+C2)
  IC_SubOfAdd,           ///< (x + y) - y -> x
  IC_MulPow2Shl,         ///< mul x, 2^k -> shl x, k
  IC_MulZextNuw,         ///< (zext a) * (zext b) gets nuw (PR59836 site)
  IC_UDivPow2LShr,       ///< udiv x, 2^k -> lshr x, k
  IC_URemPow2And,        ///< urem x, 2^k -> and x, 2^k-1
  IC_XorSelfZero,        ///< xor x, x -> 0
  IC_XorChainCancel,     ///< (x ^ y) ^ y -> x
  IC_AndAbsorb,          ///< and x, (or x, y) -> x
  IC_OrAbsorb,           ///< or x, (and x, y) -> x
  IC_LShrShlAllOnes,     ///< lshr (shl -1, x), x (PR50693 site)
  IC_ShlLShrToAnd,       ///< (x << C) >>u C -> and x, mask
  IC_AddNoCommonBitsOr,  ///< add with no common bits -> or
  IC_ICmpCommute,        ///< icmp constant swapped to the RHS
  IC_ICmpStrictness,     ///< uge/ule/sge/sle strictness canonicalization
  IC_SelectNegCond,      ///< select (xor c, 1), a, b -> select c, b, a
  IC_SelectBoolId,       ///< select c, 1, 0 -> c
  IC_SelectBoolNot,      ///< select c, 0, 1 -> xor c, 1
  IC_CastChain,          ///< zext/sext/trunc chain rewrite
  IC_MinMaxSame,         ///< min/max(x, x) -> x
  IC_MinMaxIdentity,     ///< min/max against identity constant
  IC_MinMaxAbsorb,       ///< min/max against absorbing constant
  IC_BswapBswap,         ///< bswap(bswap x) -> x
  IC_UAddSatZero,        ///< uadd.sat(x, 0) -> x
  IC_USubSatFold,        ///< usub.sat identity/self folds
  // GVN
  GVN_Unify,             ///< duplicate expression folded into leader
  GVN_FlagIntersect,     ///< poison flags intersected during unification
  // ScalarPasses
  IS_Simplify,           ///< instsimplify replaced an instruction
  CF_ConstFold,          ///< constfold evaluated an instruction
  DCE_Erase,             ///< dce erased dead instructions
  RA_ConstRight,         ///< reassociate moved a constant right
  RA_ConstMerge,         ///< reassociate merged (x op C1) op C2
  CFG_FoldBranch,        ///< simplifycfg folded a constant conditional br
  CFG_FoldSwitch,        ///< simplifycfg folded a constant switch
  CFG_RemoveUnreachable, ///< simplifycfg removed unreachable blocks
  CFG_MergeBlocks,       ///< simplifycfg merged straight-line blocks
  // Lowering
  LW_LShrBitfield,       ///< lshr bitfield combine (PR55129 site)
  LW_AShrSext,           ///< ashr sext-in-reg combine (PR55003 site)
  LW_AndOrMask,          ///< and-of-or mask combine (PR55284 site)
  LW_BitfieldExtract,    ///< bitfield extract formation (PR55833 site)
  LW_Bswap16,            ///< 16-bit bswap recognition (PR55484 site)
  LW_Rotate,             ///< rotate -> funnel shift (PR55201 site)
  LW_URemRecompose,      ///< x - (x/y)*y -> x % y (PR55287 site)
  LW_TruncNarrowURem,    ///< narrow urem under trunc (PR55296 site)
  LW_ZextTruncMask,      ///< zext(trunc) -> and mask (PR58431 site)
  LW_NarrowCmp,          ///< narrow compare promotion (PR55342 site)
  LW_USubSatExpand,      ///< usub.sat expansion (PR58109 site)
  LW_AbsExpand,          ///< abs expansion (PR55271 site)
  LW_FreezeFold,         ///< freeze fold (PR58321 site)

  NumRules ///< total count — always last, never a real rule
};

/// Words needed to hold one bit per rule.
constexpr unsigned NumRuleWords = ((unsigned)RuleID::NumRules + 63) / 64;

/// The frozen report/checkpoint slug for \p R (e.g. "instcombine.add_self_shl").
const char *ruleName(RuleID R);

namespace detail {
/// The ambient coverage sink: a NumRuleWords-sized word array the current
/// thread's optimize run ORs fired-rule bits into, or null (blind mode).
extern thread_local uint64_t *ActiveRuleWords;
} // namespace detail

/// Records that rule \p R fired in the current optimize run. Near-free when
/// no sink is installed.
inline void fireRule(RuleID R) {
  if (uint64_t *W = detail::ActiveRuleWords)
    W[(unsigned)R >> 6] |= (uint64_t)1 << ((unsigned)R & 63);
}

/// RAII installer for the thread-local rule sink. \p Words must stay alive
/// for the scope's duration and have NumRuleWords elements. Nests by
/// save/restore like BugContextScope.
class RuleCoverageScope {
public:
  explicit RuleCoverageScope(uint64_t *Words) : Prev(detail::ActiveRuleWords) {
    detail::ActiveRuleWords = Words;
  }
  ~RuleCoverageScope() { detail::ActiveRuleWords = Prev; }
  RuleCoverageScope(const RuleCoverageScope &) = delete;
  RuleCoverageScope &operator=(const RuleCoverageScope &) = delete;

private:
  uint64_t *Prev;
};

} // namespace alive

#endif // OPT_RULEIDS_H
