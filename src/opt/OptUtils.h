//===- opt/OptUtils.h - Shared transformation utilities --------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the optimization passes: single-instruction constant
/// folding (poison-aware), safe replace-and-erase, and operand matchers.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_OPTUTILS_H
#define OPT_OPTUTILS_H

#include "ir/Module.h"

namespace alive {

/// Attempts to fold \p I to a constant (all operands constant). Honors
/// poison semantics: a poison-producing flag violation folds to poison; a
/// UB-producing operation (division by zero) is never folded. \returns null
/// when not foldable.
Constant *tryConstantFold(const Instruction *I, Module &M);

/// Folds a binary operator over constant scalars. \returns null when the
/// operation would be UB (caller must not fold).
Constant *foldBinaryConst(BinaryInst::BinOp Op, bool NUW, bool NSW,
                          bool Exact, const APInt &L, const APInt &R,
                          Module &M);

/// Replaces all uses of \p I with \p V and erases \p I from its block.
void replaceAndErase(Instruction *I, Value *V);

/// Removes unused side-effect-free instructions (one sweep, iterated to a
/// local fixed point). \returns true if anything was removed.
bool removeDeadInstructions(Function &F);

/// Matches a constant integer (scalar only).
inline const ConstantInt *matchConstInt(const Value *V) {
  return dyn_cast<ConstantInt>(V);
}

/// True if \p V is the given scalar constant value.
bool matchSpecificInt(const Value *V, uint64_t Val);

/// Creates an integer constant with the type of \p Like.
ConstantInt *mkIntLike(const Value *Like, const APInt &V, Module &M);

} // namespace alive

#endif // OPT_OPTUTILS_H
