//===- opt/MemoryPasses.cpp - SROA, InferAlignment, MoveAutoInit -----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory-related passes hosting three seeded Table I crash defects:
///
///   72035 (SROA): the AllocaSliceRewriter analog mishandles a gep slice
///     with a nonzero index into a promotable alloca.
///   64687 (AlignmentFromAssumptions / InferAlignment): alignment values
///     were assumed to be powers of two; a non-power-of-two alignment
///     (paper Listing 16 used align 123) trips the Log2 assertion.
///   64661 (MoveAutoInit): sinking constant-initializing stores asserts
///     there is a single initializing value; two different constants to
///     the same alloca fire the "assertion is too strong".
///
//===----------------------------------------------------------------------===//

#include "opt/BugInjection.h"
#include "opt/OptUtils.h"
#include "opt/Pass.h"

using namespace alive;

namespace {

/// Returns the alloca directly behind \p Ptr, or null.
AllocaInst *underlyingAlloca(Value *Ptr) {
  return dyn_cast<AllocaInst>(Ptr);
}

//===----------------------------------------------------------------------===//
// SROA (single-block scalar promotion)
//===----------------------------------------------------------------------===//

class SROAPass : public Pass {
public:
  std::string getName() const override { return "sroa"; }

  bool runOnFunction(Function &F) override {
    bool Changed = false;
    if (F.getNumBlocks() != 1)
      return false; // single-block promotion only (mem2reg-lite)
    BasicBlock *BB = F.getEntryBlock();

    // Collect promotable allocas: address never escapes (used only by
    // full-width loads and stores-of-value in this block).
    for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
      auto *AI = dyn_cast<AllocaInst>(BB->getInst(Idx));
      if (!AI || !AI->getAllocatedType()->isIntegerTy())
        continue;

      bool Promotable = true;
      for (User *U : AI->users()) {
        if (auto *L = dyn_cast<LoadInst>(U)) {
          if (L->getType() != AI->getAllocatedType())
            Promotable = false;
        } else if (auto *S = dyn_cast<StoreInst>(U)) {
          if (S->getPointer() != AI ||
              S->getValueOperand()->getType() != AI->getAllocatedType())
            Promotable = false;
        } else if (auto *G = dyn_cast<GEPInst>(U)) {
          // Seeded crash 72035: the slice rewriter mishandles a nonzero
          // gep index into an otherwise promotable alloca.
          const ConstantInt *GC = matchConstInt(G->getIndex());
          if (isBugEnabled(BugId::PR72035) && GC && !GC->isZero())
            optimizerCrash(BugId::PR72035,
                           "AllocaSliceRewriter on out-of-slice gep index");
          Promotable = false;
        } else {
          Promotable = false;
        }
      }
      if (!Promotable)
        continue;

      // Forward stored values to subsequent loads in program order.
      Value *Cur = nullptr; // null = uninitialized (undef)
      bool LocalChanged = false;
      std::vector<Instruction *> ToErase;
      for (unsigned K = 0; K != BB->size(); ++K) {
        Instruction *I = BB->getInst(K);
        if (auto *S = dyn_cast<StoreInst>(I)) {
          if (S->getPointer() == AI) {
            Cur = S->getValueOperand();
            ToErase.push_back(S);
          }
        } else if (auto *L = dyn_cast<LoadInst>(I)) {
          if (L->getPointer() == AI) {
            Value *Repl =
                Cur ? Cur
                    : (Value *)F.getParent()->getConstants().getUndef(
                          L->getType());
            L->replaceAllUsesWith(Repl);
            ToErase.push_back(L);
            LocalChanged = true;
          }
        }
      }
      if (!LocalChanged && ToErase.empty())
        continue;
      for (Instruction *I : ToErase)
        BB->erase(I);
      if (!AI->hasUses()) {
        BB->erase(AI);
        Idx = (unsigned)-1; // restart
      }
      Changed = true;
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// InferAlignment (AlignmentFromAssumptions analog)
//===----------------------------------------------------------------------===//

class InferAlignmentPass : public Pass {
public:
  std::string getName() const override { return "infer-alignment"; }

  bool runOnFunction(Function &F) override {
    bool Changed = false;
    auto log2OfAlign = [](unsigned Align, bool &Bad) {
      Bad = (Align & (Align - 1)) != 0;
      unsigned L = 0;
      while ((1u << L) < Align)
        ++L;
      return L;
    };

    for (BasicBlock *BB : F.blocks()) {
      for (Instruction *I : BB->insts()) {
        unsigned Align = 0;
        if (auto *L = dyn_cast<LoadInst>(I))
          Align = L->getAlign();
        else if (auto *S = dyn_cast<StoreInst>(I))
          Align = S->getAlign();
        else
          continue;
        if (Align <= 1)
          continue;

        // Seeded crash 64687: "alignments that are not powers of two are
        // allowed in certain situations. However, an optimization pass
        // incorrectly assumed that all alignments are powers-of-two."
        bool Bad = false;
        unsigned L2 = log2OfAlign(Align, Bad);
        if (Bad) {
          if (isBugEnabled(BugId::PR64687))
            optimizerCrash(BugId::PR64687,
                           "Log2 of non-power-of-two alignment " +
                               std::to_string(Align));
          continue; // correct behavior: leave unusual alignments alone
        }
        (void)L2;

        // Raise the access alignment to the alloca's known alignment (a
        // sound strengthening only when it divides the current address —
        // for direct alloca accesses it does).
        Value *Ptr = isa<LoadInst>(I) ? cast<LoadInst>(I)->getPointer()
                                      : cast<StoreInst>(I)->getPointer();
        if (AllocaInst *AI = underlyingAlloca(Ptr)) {
          unsigned AllocAlign = AI->getAlign();
          if ((AllocAlign & (AllocAlign - 1)) == 0 && AllocAlign > Align) {
            if (auto *LI = dyn_cast<LoadInst>(I))
              LI->setAlign(AllocAlign);
            else
              cast<StoreInst>(I)->setAlign(AllocAlign);
            Changed = true;
          }
        }
      }
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// MoveAutoInit
//===----------------------------------------------------------------------===//

class MoveAutoInitPass : public Pass {
public:
  std::string getName() const override { return "move-auto-init"; }

  bool runOnFunction(Function &F) override {
    // Sinks a constant-initializing store of an alloca down to just before
    // the first other use of that alloca (the MoveAutoInit idea).
    bool Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
        auto *AI = dyn_cast<AllocaInst>(BB->getInst(Idx));
        if (!AI)
          continue;

        // Find constant-initializing stores to this alloca in this block.
        std::vector<StoreInst *> InitStores;
        for (User *U : AI->users()) {
          auto *S = dyn_cast<StoreInst>(U);
          if (S && S->getPointer() == AI && S->getParent() == BB &&
              isa<ConstantInt>(S->getValueOperand()))
            InitStores.push_back(S);
        }
        if (InitStores.empty())
          continue;

        // Seeded crash 64661: "the assertion is too strong" — the pass
        // asserted a single initializing value; two stores of DIFFERENT
        // constants trip it.
        if (isBugEnabled(BugId::PR64661) && InitStores.size() >= 2) {
          const ConstantInt *V0 =
              cast<ConstantInt>(InitStores[0]->getValueOperand());
          for (StoreInst *S : InitStores)
            if (cast<ConstantInt>(S->getValueOperand())->getValue() !=
                V0->getValue())
              optimizerCrash(BugId::PR64661,
                             "multiple distinct auto-init values");
        }
        if (InitStores.size() != 1)
          continue;
        StoreInst *Init = InitStores.front();
        unsigned InitIdx = BB->indexOf(Init);

        // First use of the alloca after the store (same block only).
        unsigned FirstUse = BB->size();
        for (User *U : AI->users()) {
          auto *UI = dyn_cast<Instruction>((Value *)U);
          if (!UI || UI == Init || UI->getParent() != BB)
            continue;
          unsigned UIdx = BB->indexOf(UI);
          if (UIdx > InitIdx)
            FirstUse = std::min(FirstUse, UIdx);
        }
        if (FirstUse == BB->size() || FirstUse <= InitIdx + 1)
          continue;
        // No intervening instruction may write memory or observe it.
        bool SafeToSink = true;
        for (unsigned K = InitIdx + 1; K != FirstUse; ++K)
          if (BB->getInst(K)->mayAccessMemory())
            SafeToSink = false;
        if (!SafeToSink)
          continue;

        auto Owned = BB->take(Init);
        BB->insert(FirstUse - 1, std::move(Owned));
        Changed = true;
      }
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> alive::createSROAPass() {
  return std::make_unique<SROAPass>();
}
std::unique_ptr<Pass> alive::createInferAlignmentPass() {
  return std::make_unique<InferAlignmentPass>();
}
std::unique_ptr<Pass> alive::createMoveAutoInitPass() {
  return std::make_unique<MoveAutoInitPass>();
}
