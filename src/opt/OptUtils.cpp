//===- opt/OptUtils.cpp - Shared transformation utilities ------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/OptUtils.h"

#include "ir/BasicBlock.h"
#include "opt/BugInjection.h"

using namespace alive;

Constant *alive::foldBinaryConst(BinaryInst::BinOp Op, bool NUW, bool NSW,
                                 bool Exact, const APInt &L, const APInt &R,
                                 Module &M) {
  unsigned W = L.getBitWidth();
  ConstantPoolCtx &CP = M.getConstants();
  IntegerType *Ty = M.getTypes().getIntTy(W);
  auto poison = [&]() -> Constant * { return CP.getPoison(Ty); };
  auto val = [&](const APInt &V) -> Constant * { return CP.getInt(Ty, V); };

  bool Ov = false;
  switch (Op) {
  case BinaryInst::Add: {
    APInt Res = L + R;
    if (NUW) {
      L.uadd_ov(R, Ov);
      if (Ov)
        return poison();
    }
    if (NSW) {
      L.sadd_ov(R, Ov);
      if (Ov)
        return poison();
    }
    return val(Res);
  }
  case BinaryInst::Sub: {
    APInt Res = L - R;
    if (NUW) {
      L.usub_ov(R, Ov);
      if (Ov)
        return poison();
    }
    if (NSW) {
      L.ssub_ov(R, Ov);
      if (Ov)
        return poison();
    }
    return val(Res);
  }
  case BinaryInst::Mul: {
    APInt Res = L * R;
    if (NUW) {
      L.umul_ov(R, Ov);
      if (Ov)
        return poison();
    }
    if (NSW) {
      L.smul_ov(R, Ov);
      if (Ov)
        return poison();
    }
    return val(Res);
  }
  case BinaryInst::UDiv:
    if (R.isZero())
      return nullptr; // UB: never fold
    if (Exact && !L.urem(R).isZero())
      return poison();
    return val(L.udiv(R));
  case BinaryInst::SDiv:
    if (R.isZero() || (L.isSignedMinValue() && R.isAllOnes()))
      return nullptr; // UB
    if (Exact && !L.srem(R).isZero())
      return poison();
    return val(L.sdiv(R));
  case BinaryInst::URem:
    if (R.isZero())
      return nullptr;
    return val(L.urem(R));
  case BinaryInst::SRem:
    if (R.isZero() || (L.isSignedMinValue() && R.isAllOnes()))
      return nullptr;
    return val(L.srem(R));
  case BinaryInst::Shl: {
    if (R.uge(APInt(W, W)))
      return poison();
    APInt Res = L.shl(R);
    if (NUW) {
      L.ushl_ov(R, Ov);
      if (Ov)
        return poison();
    }
    if (NSW) {
      L.sshl_ov(R, Ov);
      if (Ov)
        return poison();
    }
    return val(Res);
  }
  case BinaryInst::LShr: {
    if (R.uge(APInt(W, W)))
      return poison();
    APInt Res = L.lshr(R);
    if (Exact && Res.shl(R) != L)
      return poison();
    return val(Res);
  }
  case BinaryInst::AShr: {
    if (R.uge(APInt(W, W)))
      return poison();
    APInt Res = L.ashr(R);
    if (Exact && Res.shl(R) != L)
      return poison();
    return val(Res);
  }
  case BinaryInst::And:
    return val(L & R);
  case BinaryInst::Or:
    return val(L | R);
  case BinaryInst::Xor:
    return val(L ^ R);
  case BinaryInst::NumBinOps:
    break;
  }
  assert(false && "invalid binop");
  return nullptr;
}

Constant *alive::tryConstantFold(const Instruction *I, Module &M) {
  ConstantPoolCtx &CP = M.getConstants();

  auto isPoisonOp = [](const Value *V) { return isa<ConstantPoison>(V); };
  // Undef is modeled as zero throughout the toolchain (see DESIGN.md).
  auto asInt = [&](const Value *V) -> const ConstantInt * {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return CI;
    if (isa<ConstantUndef>(V) && V->getType()->isIntegerTy())
      return CP.getInt(cast<IntegerType>((Type *)V->getType()),
                       APInt::getZero(V->getType()->getIntegerBitWidth()));
    return nullptr;
  };

  switch (I->getKind()) {
  case Value::VK_BinaryInst: {
    const auto *B = cast<BinaryInst>(I);
    if (!B->getType()->isIntegerTy())
      return nullptr; // vector folds are handled elementwise elsewhere
    // Poison divisor is UB for the division family: never fold.
    if (BinaryInst::isDivRem(B->getBinOp()) && isPoisonOp(B->getRHS()))
      return nullptr;
    if (isPoisonOp(B->getLHS()) || isPoisonOp(B->getRHS()))
      return CP.getPoison(B->getType());
    const ConstantInt *L = asInt(B->getLHS());
    const ConstantInt *R = asInt(B->getRHS());
    if (!L || !R)
      return nullptr;
    return foldBinaryConst(B->getBinOp(), B->hasNUW(), B->hasNSW(),
                           B->isExact(), L->getValue(), R->getValue(), M);
  }
  case Value::VK_ICmpInst: {
    const auto *C = cast<ICmpInst>(I);
    if (isPoisonOp(C->getLHS()) || isPoisonOp(C->getRHS()))
      return CP.getPoison(C->getType());
    const ConstantInt *L = asInt(C->getLHS());
    const ConstantInt *R = asInt(C->getRHS());
    if (!L || !R)
      return nullptr;
    bool V = ICmpInst::evaluate(C->getPredicate(), L->getValue(),
                                R->getValue());
    return CP.getBool(M.getTypes(), V);
  }
  case Value::VK_SelectInst: {
    const auto *S = cast<SelectInst>(I);
    if (isPoisonOp(S->getCondition()))
      return CP.getPoison(S->getType());
    const ConstantInt *C = asInt(S->getCondition());
    if (!C)
      return nullptr;
    Value *Arm = C->isZero() ? S->getFalseValue() : S->getTrueValue();
    return dyn_cast<Constant>(Arm) ? cast<Constant>(Arm) : nullptr;
  }
  case Value::VK_CastInst: {
    const auto *C = cast<CastInst>(I);
    if (isPoisonOp(C->getSrc()))
      return CP.getPoison(C->getType());
    const ConstantInt *S = asInt(C->getSrc());
    if (!S)
      return nullptr;
    unsigned W = C->getType()->getIntegerBitWidth();
    APInt V = S->getValue();
    switch (C->getCastOp()) {
    case CastInst::Trunc:
      V = V.trunc(W);
      break;
    case CastInst::ZExt:
      V = V.zext(W);
      break;
    case CastInst::SExt:
      V = V.sext(W);
      break;
    }
    return CP.getInt(M.getTypes().getIntTy(W), V);
  }
  case Value::VK_FreezeInst: {
    const auto *F = cast<FreezeInst>(I);
    if (!F->getType()->isIntegerTy())
      return nullptr;
    unsigned W = F->getType()->getIntegerBitWidth();
    // freeze(poison) and freeze(undef) resolve to zero (system-wide policy).
    if (isPoisonOp(F->getSrc()) || isa<ConstantUndef>(F->getSrc()))
      return CP.getInt(M.getTypes().getIntTy(W), APInt::getZero(W));
    if (const auto *CI = dyn_cast<ConstantInt>(F->getSrc()))
      return const_cast<ConstantInt *>(CI);
    return nullptr;
  }
  case Value::VK_CallInst: {
    const auto *C = cast<CallInst>(I);
    const Function *Callee = C->getCallee();
    if (!Callee->isIntrinsic() || !intrinsicIsPure(Callee->getIntrinsicID()))
      return nullptr;
    if (!C->getType()->isIntegerTy())
      return nullptr;
    IntrinsicID ID = Callee->getIntrinsicID();

    // Seeded crash 56945 (ConstantFolding): the original code dyn_cast'ed
    // an operand to ConstantInt without considering a poison input.
    for (unsigned K = 0; K != C->getNumArgs(); ++K)
      if (isPoisonOp(C->getArg(K))) {
        if (isBugEnabled(BugId::PR56945))
          optimizerCrash(BugId::PR56945,
                         "dyn_cast<ConstantInt> on poison operand while "
                         "folding " + Callee->getName());
        return CP.getPoison(C->getType());
      }

    std::vector<const ConstantInt *> Args;
    for (unsigned K = 0; K != C->getNumArgs(); ++K) {
      const ConstantInt *A = asInt(C->getArg(K));
      if (!A)
        return nullptr;
      Args.push_back(A);
    }
    unsigned W = C->getType()->getIntegerBitWidth();
    IntegerType *Ty = M.getTypes().getIntTy(W);
    const APInt &X = Args[0]->getValue();
    switch (ID) {
    case IntrinsicID::SMin:
      return CP.getInt(Ty, X.smin(Args[1]->getValue()));
    case IntrinsicID::SMax:
      return CP.getInt(Ty, X.smax(Args[1]->getValue()));
    case IntrinsicID::UMin:
      return CP.getInt(Ty, X.umin(Args[1]->getValue()));
    case IntrinsicID::UMax:
      return CP.getInt(Ty, X.umax(Args[1]->getValue()));
    case IntrinsicID::Abs:
      if (X.isSignedMinValue() && !Args[1]->isZero())
        return CP.getPoison(Ty);
      return CP.getInt(Ty, X.abs());
    case IntrinsicID::BSwap:
      return CP.getInt(Ty, X.byteSwap());
    case IntrinsicID::CtPop:
      return CP.getInt(Ty, APInt(W, X.popcount()));
    case IntrinsicID::Ctlz:
    case IntrinsicID::Cttz:
      if (X.isZero() && !Args[1]->isZero()) {
        // Seeded crash 56981 (ConstantFolding): the assertion rejecting the
        // zero input was too strong — it fired even for the poison-
        // returning configuration instead of folding to poison.
        if (isBugEnabled(BugId::PR56981))
          optimizerCrash(BugId::PR56981,
                         "assertion X != 0 while folding count-zeros");
        return CP.getPoison(Ty);
      }
      return CP.getInt(Ty, APInt(W, ID == IntrinsicID::Ctlz
                                        ? X.countLeadingZeros()
                                        : X.countTrailingZeros()));
    case IntrinsicID::UAddSat:
      return CP.getInt(Ty, X.uadd_sat(Args[1]->getValue()));
    case IntrinsicID::USubSat:
      return CP.getInt(Ty, X.usub_sat(Args[1]->getValue()));
    case IntrinsicID::SAddSat:
      return CP.getInt(Ty, X.sadd_sat(Args[1]->getValue()));
    case IntrinsicID::SSubSat:
      return CP.getInt(Ty, X.ssub_sat(Args[1]->getValue()));
    case IntrinsicID::Fshl:
    case IntrinsicID::Fshr: {
      unsigned S =
          (unsigned)Args[2]->getValue().urem(APInt(W, W)).getZExtValue();
      const APInt &Y = Args[1]->getValue();
      APInt R = ID == IntrinsicID::Fshl
                    ? (S == 0 ? X : (X.shl(S) | Y.lshr(W - S)))
                    : (S == 0 ? Y : (X.shl(W - S) | Y.lshr(S)));
      return CP.getInt(Ty, R);
    }
    default:
      return nullptr;
    }
  }
  default:
    return nullptr;
  }
}

void alive::replaceAndErase(Instruction *I, Value *V) {
  assert(I->getParent() && "instruction not in a block");
  I->replaceAllUsesWith(V);
  I->getParent()->erase(I);
}

bool alive::removeDeadInstructions(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (BasicBlock *BB : F.blocks()) {
      for (unsigned I = BB->size(); I-- > 0;) {
        Instruction *Inst = BB->getInst(I);
        if (Inst->isTerminator() || Inst->hasUses())
          continue;
        if (Inst->mayHaveSideEffects())
          continue;
        if (isa<AllocaInst>(Inst) || isa<LoadInst>(Inst) ||
            Inst->isPure() || isa<PhiNode>(Inst)) {
          BB->erase(Inst);
          LocalChange = Changed = true;
        }
      }
    }
  }
  return Changed;
}

bool alive::matchSpecificInt(const Value *V, uint64_t Val) {
  const auto *CI = dyn_cast<ConstantInt>(V);
  return CI && CI->getValue() ==
                   APInt(CI->getValue().getBitWidth(), Val);
}

ConstantInt *alive::mkIntLike(const Value *Like, const APInt &V, Module &M) {
  auto *Ty = cast<IntegerType>((Type *)Like->getType());
  assert(Ty->getBitWidth() == V.getBitWidth() && "width mismatch");
  return M.getConstants().getInt(Ty, V);
}
