//===- opt/PassManager.cpp - Pass manager and registry ---------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "support/Cancellation.h"
#include "support/TraceRecorder.h"

#include <functional>
#include <map>
#include <optional>
#include <sstream>

using namespace alive;

void PassManager::setTelemetry(StatRegistry *S) {
  Stats = S;
  PassStats.clear();
}

void PassManager::setTrace(TraceRecorder *T) {
  Trace = T;
  PassTraceNames.clear();
}

bool PassManager::run(Module &M, ChangedFunctionSet *ChangedOut) {
  // Make the campaign's defects visible to the pass bodies for exactly the
  // duration of the run (exception-safe: unwinding on an OptimizerCrash
  // restores the previous ambient context).
  std::optional<BugContextScope> Scope;
  if (BugCtx)
    Scope.emplace(BugCtx);
  // Ambient watchdog for the pass bodies (mirrors the bug context): long
  // per-function transforms can consume steps without PassManager plumbing.
  std::optional<CancellationScope> WatchdogScope;
  if (Watchdog)
    WatchdogScope.emplace(Watchdog);
  if (Stats && PassStats.size() != Passes.size()) {
    PassStats.clear();
    for (auto &P : Passes) {
      std::string Base = "pass." + P->getName();
      PassStats.push_back({&Stats->counter(Base + ".invocations"),
                           &Stats->counter(Base + ".changed"),
                           &Stats->histogram(Base + ".seconds")});
    }
  }
  if (Trace && PassTraceNames.size() != Passes.size()) {
    PassTraceNames.clear();
    for (auto &P : Passes)
      PassTraceNames.push_back(Trace->intern("pass." + P->getName()));
  }
  bool Changed = false;
  for (size_t PI = 0; PI != Passes.size(); ++PI) {
    Pass &P = *Passes[PI];
    PassTelemetry *T = Stats ? &PassStats[PI] : nullptr;
    TraceSpan Span(Trace, Trace ? PassTraceNames[PI] : nullptr);
    ScopedTimer Sweep(T ? T->Seconds : nullptr);
    for (Function *F : M.functions())
      if (!F->isDeclaration()) {
        if (Watchdog && Watchdog->consume(1))
          return Changed;
        if (T)
          ++*T->Invocations;
        if (P.runOnFunction(*F)) {
          Changed = true;
          if (T)
            ++*T->Changed;
          if (ChangedOut)
            ChangedOut->insert(F->getName());
        }
      }
  }
  return Changed;
}

bool PassManager::runToFixpoint(Module &M, unsigned MaxIter,
                                ChangedFunctionSet *ChangedOut) {
  bool Changed = false;
  for (unsigned I = 0; I != MaxIter; ++I) {
    if (Watchdog && Watchdog->cancelled())
      break;
    if (!run(M, ChangedOut))
      break;
    Changed = true;
  }
  return Changed;
}

namespace {

using Factory = std::function<std::unique_ptr<Pass>()>;

const std::map<std::string, Factory> &registry() {
  static const std::map<std::string, Factory> Registry = {
      {"instsimplify", createInstSimplifyPass},
      {"instcombine", createInstCombinePass},
      {"constfold", createConstantFoldPass},
      {"dce", createDCEPass},
      {"gvn", createGVNPass},
      {"simplifycfg", createSimplifyCFGPass},
      {"reassociate", createReassociatePass},
      {"sroa", createSROAPass},
      {"vector-combine", createVectorCombinePass},
      {"infer-alignment", createInferAlignmentPass},
      {"move-auto-init", createMoveAutoInitPass},
      {"lowering", createLoweringPass},
      // Fault injectors — opt-in via -passes=, never in O1/O2.
      {"test-slow", createTestSlowPass},
      {"test-crash", createTestCrashPass},
      {"test-abort", createTestAbortPass},
  };
  return Registry;
}

/// Pass names of the canned pipelines.
std::vector<std::string> pipelineNames(const std::string &Level) {
  if (Level == "O1")
    return {"instsimplify", "constfold", "instcombine", "dce", "simplifycfg"};
  // O2: the full middle-end plus the ISel-style lowering combines that host
  // the backend bug seeds (the campaign's analog of also testing the
  // AArch64 backend).
  return {"sroa",        "instsimplify",  "constfold",
          "instcombine", "reassociate",   "gvn",
          "dce",         "simplifycfg",   "vector-combine",
          "infer-alignment", "move-auto-init", "lowering"};
}

} // namespace

std::unique_ptr<Pass> alive::createPassByName(const std::string &Name) {
  auto It = registry().find(Name);
  return It == registry().end() ? nullptr : It->second();
}

std::vector<std::string> alive::allPassNames() {
  std::vector<std::string> Names;
  for (const auto &[Name, _] : registry())
    Names.push_back(Name);
  return Names;
}

bool alive::buildPipeline(const std::string &Desc, PassManager &PM,
                          std::string &Error) {
  std::stringstream SS(Desc);
  std::string Item;
  while (std::getline(SS, Item, ',')) {
    if (Item.empty())
      continue;
    if (Item[0] == '-')
      Item = Item.substr(1);
    if (Item == "O1" || Item == "O2" || Item == "O3") {
      for (const std::string &Name :
           pipelineNames(Item == "O1" ? "O1" : "O2"))
        PM.add(createPassByName(Name));
      continue;
    }
    std::unique_ptr<Pass> P = createPassByName(Item);
    if (!P) {
      Error = "unknown pass '" + Item + "'";
      return false;
    }
    PM.add(std::move(P));
  }
  return true;
}
