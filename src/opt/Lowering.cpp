//===- opt/Lowering.cpp - ISel-style combines (backend analog) -------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction-selection-style combines over IR: bitfield extracts, rotate
/// matching, narrow-compare promotion, saturating-arithmetic expansion and
/// friends. This pass is the reproduction's analog of the paper's AArch64
/// backend testing campaign: the Table I backend defects (and the
/// architecture-independent "multiple backends" ones) are seeded here, at
/// the combines that model the buggy selection code.
///
//===----------------------------------------------------------------------===//

#include "opt/BugInjection.h"
#include "opt/OptUtils.h"
#include "opt/Pass.h"
#include "opt/RuleIDs.h"

using namespace alive;

namespace {

class LoweringPass : public Pass {
public:
  std::string getName() const override { return "lowering"; }

  bool runOnFunction(Function &F) override {
    M = F.getParent();
    bool Changed = false;
    bool LocalChange = true;
    unsigned Rounds = 0;
    while (LocalChange && Rounds++ < 4) {
      LocalChange = false;
      for (BasicBlock *BB : F.blocks()) {
        for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
          Instruction *I = BB->getInst(Idx);
          if (I->isTerminator())
            continue;
          if (combine(I, BB, Idx)) {
            LocalChange = Changed = true;
            Idx = (unsigned)-1;
          }
        }
      }
      Changed |= removeDeadInstructions(F);
    }
    return Changed;
  }

private:
  Module *M = nullptr;

  ConstantInt *intC(Type *Ty, const APInt &V) {
    return M->getConstants().getInt(cast<IntegerType>(Ty), V);
  }
  Instruction *ins(BasicBlock *BB, unsigned Idx, Instruction *I) {
    return BB->insert(Idx, std::unique_ptr<Instruction>(I));
  }

  bool combine(Instruction *I, BasicBlock *BB, unsigned Idx);
  bool combineLShr(BinaryInst *B, BasicBlock *BB, unsigned Idx);
  bool combineAShr(BinaryInst *B, BasicBlock *BB, unsigned Idx);
  bool combineAnd(BinaryInst *B, BasicBlock *BB, unsigned Idx);
  bool combineOr(BinaryInst *B, BasicBlock *BB, unsigned Idx);
  bool combineSub(BinaryInst *B, BasicBlock *BB, unsigned Idx);
  bool combineTrunc(CastInst *C, BasicBlock *BB, unsigned Idx);
  bool combineZExt(CastInst *C, BasicBlock *BB, unsigned Idx);
  bool combineICmp(ICmpInst *C, BasicBlock *BB, unsigned Idx);
  bool combineCall(CallInst *C, BasicBlock *BB, unsigned Idx);
  bool combineFreeze(FreezeInst *Fr, BasicBlock *BB, unsigned Idx);
  bool checkLegalizer(Instruction *I);
};

bool LoweringPass::combine(Instruction *I, BasicBlock *BB, unsigned Idx) {
  if (checkLegalizer(I))
    return false; // (never reached: checkLegalizer crashes or is a no-op)

  switch (I->getKind()) {
  case Value::VK_BinaryInst: {
    auto *B = cast<BinaryInst>(I);
    if (!B->getType()->isIntegerTy())
      return false;
    switch (B->getBinOp()) {
    case BinaryInst::LShr:
      return combineLShr(B, BB, Idx);
    case BinaryInst::AShr:
      return combineAShr(B, BB, Idx);
    case BinaryInst::And:
      return combineAnd(B, BB, Idx);
    case BinaryInst::Or:
      return combineOr(B, BB, Idx);
    case BinaryInst::Sub:
      return combineSub(B, BB, Idx);
    default:
      return false;
    }
  }
  case Value::VK_CastInst: {
    auto *C = cast<CastInst>(I);
    if (C->getCastOp() == CastInst::Trunc)
      return combineTrunc(C, BB, Idx);
    if (C->getCastOp() == CastInst::ZExt)
      return combineZExt(C, BB, Idx);
    return false;
  }
  case Value::VK_ICmpInst:
    return combineICmp(cast<ICmpInst>(I), BB, Idx);
  case Value::VK_CallInst:
    return combineCall(cast<CallInst>(I), BB, Idx);
  case Value::VK_FreezeInst:
    return combineFreeze(cast<FreezeInst>(I), BB, Idx);
  default:
    return false;
  }
}

/// Seeded crash 58425: division on an "unlegalizable" width (65..127 bits)
/// never reached the legalizer.
bool LoweringPass::checkLegalizer(Instruction *I) {
  if (!isBugEnabled(BugId::PR58425))
    return false;
  auto *B = dyn_cast<BinaryInst>(I);
  if (!B || !BinaryInst::isDivRem(B->getBinOp()) ||
      !B->getType()->isIntegerTy())
    return false;
  unsigned W = B->getType()->getIntegerBitWidth();
  if (W > 32 && W < 64 && W % 8 != 0)
    optimizerCrash(BugId::PR58425,
                   "udiv of i" + std::to_string(W) +
                       " did not reach the legalizer");
  return false;
}

/// 55129: lshr (zext i1 %b to iN), C with C >= 1 is a zero-width bitfield
/// extract and must emit 0. The buggy selection emitted the zext instead.
bool LoweringPass::combineLShr(BinaryInst *B, BasicBlock *BB, unsigned Idx) {
  unsigned W = B->getType()->getIntegerBitWidth();
  const ConstantInt *Amt = matchConstInt(B->getRHS());
  if (!Amt || Amt->isZero() || Amt->getValue().uge(APInt(W, W)))
    return false;

  if (auto *Z = dyn_cast<CastInst>(B->getLHS())) {
    if (Z->getCastOp() == CastInst::ZExt &&
        Z->getSrc()->getType()->isBoolTy() && !B->isExact()) {
      if (isBugEnabled(BugId::PR55129)) {
        replaceAndErase(B, Z); // buggy: keeps the value
        fireRule(RuleID::LW_LShrBitfield);
        return true;
      }
      replaceAndErase(B, intC(B->getType(), APInt::getZero(W)));
      fireRule(RuleID::LW_LShrBitfield);
      return true;
    }
  }
  return false;
}

/// 55003: ashr (shl x, C), C is a sign-extend-in-register; folding it to
/// plain x is only sound when the shl carries nsw. The buggy combine
/// dropped the whole pair unconditionally.
bool LoweringPass::combineAShr(BinaryInst *B, BasicBlock *BB, unsigned Idx) {
  const ConstantInt *Amt = matchConstInt(B->getRHS());
  auto *Shl = dyn_cast<BinaryInst>(B->getLHS());
  if (!Amt || !Shl || Shl->getBinOp() != BinaryInst::Shl)
    return false;
  const ConstantInt *ShlAmt = matchConstInt(Shl->getRHS());
  if (!ShlAmt || ShlAmt->getValue() != Amt->getValue())
    return false;
  unsigned W = B->getType()->getIntegerBitWidth();
  if (Amt->getValue().uge(APInt(W, W)))
    return false;
  bool Sound = Shl->hasNSW() && !B->isExact();
  if (Sound || isBugEnabled(BugId::PR55003)) {
    replaceAndErase(B, Shl->getLHS());
    fireRule(RuleID::LW_AShrSext);
    return true;
  }
  return false;
}

/// 55284: and (or x, C1), C2 -> and x, C2 requires C1 & C2 == 0. The buggy
/// GlobalISel combine tested C1 & C2 == C1 instead.
bool LoweringPass::combineAnd(BinaryInst *B, BasicBlock *BB, unsigned Idx) {
  const ConstantInt *C2 = matchConstInt(B->getRHS());
  auto *Or = dyn_cast<BinaryInst>(B->getLHS());
  if (C2 && Or && Or->getBinOp() == BinaryInst::Or) {
    if (const ConstantInt *C1 = matchConstInt(Or->getRHS())) {
      APInt Shared = C1->getValue() & C2->getValue();
      bool Sound = Shared.isZero();
      bool BuggyCondition = Shared == C1->getValue(); // C1 subset of C2
      if (Sound ||
          (isBugEnabled(BugId::PR55284) && BuggyCondition)) {
        auto *And =
            new BinaryInst(BinaryInst::And, Or->getLHS(), B->getRHS());
        And->setName(B->getName());
        ins(BB, Idx, And);
        replaceAndErase(B, And);
        fireRule(RuleID::LW_AndOrMask);
        return true;
      }
    }
  }

  // 55833: and (lshr x, C1), (2^n - 1) is a bitfield extract; it lowers to
  // lshr (shl x, W-n-C1), W-n. The seeded conflict between
  // tryBitfieldExtractOp and isDef32 shows up at the C1+n == W-1 boundary,
  // where the buggy selection shifted one bit short.
  {
    unsigned W = B->getType()->getIntegerBitWidth();
    auto *Shr = dyn_cast<BinaryInst>(B->getLHS());
    const ConstantInt *MaskC = matchConstInt(B->getRHS());
    if (Shr && Shr->getBinOp() == BinaryInst::LShr && !Shr->isExact() &&
        MaskC && !MaskC->isZero() && !MaskC->isAllOnes()) {
      const ConstantInt *C1C = matchConstInt(Shr->getRHS());
      APInt MaskPlus1 = MaskC->getValue() + APInt::getOne(W);
      if (C1C && !C1C->isZero() && C1C->getValue().ult(APInt(W, W)) &&
          MaskPlus1.isPowerOf2()) {
        unsigned N = MaskPlus1.logBase2();
        unsigned C1 = (unsigned)C1C->getValue().getZExtValue();
        if (C1 + N < W) {
          bool Buggy = isBugEnabled(BugId::PR55833) &&
                       C1 + N == W - 1;
          unsigned ShlAmt = W - N - C1 - (Buggy ? 1 : 0);
          auto *Shl = new BinaryInst(BinaryInst::Shl, Shr->getLHS(),
                                    intC(B->getType(), APInt(W, ShlAmt)));
          ins(BB, Idx, Shl);
          auto *NewShr = new BinaryInst(BinaryInst::LShr, Shl,
                                        intC(B->getType(), APInt(W, W - N)));
          NewShr->setName(B->getName());
          ins(BB, BB->indexOf(B), NewShr);
          replaceAndErase(B, NewShr);
          fireRule(RuleID::LW_BitfieldExtract);
          return true;
        }
      }
    }
  }
  return false;
}

/// 55201 + 58423: rotate matching. or (shl x, C), (lshr y, W-C) is
/// fshl(x, y, C); a "disguised" rotate arrives with extra masks that must
/// be verified before folding (55201). The CSE builder crash (58423) fires
/// when the matched shifts have other uses ("reuse removed instructions").
bool LoweringPass::combineOr(BinaryInst *B, BasicBlock *BB, unsigned Idx) {
  unsigned W = B->getType()->getIntegerBitWidth();

  // 55484: bswap half-word match. or (shl x, 8), (lshr x, 8) IS bswap on
  // i16; the buggy MatchBSwapHWordLow also matched the same shift pair at
  // wider types, where it only swaps the low half-word.
  {
    auto *ShlB = dyn_cast<BinaryInst>(B->getLHS());
    auto *ShrB = dyn_cast<BinaryInst>(B->getRHS());
    if (ShlB && ShrB && ShlB->getBinOp() == BinaryInst::Shl &&
        ShrB->getBinOp() == BinaryInst::LShr && !ShlB->hasNUW() &&
        !ShlB->hasNSW() && !ShrB->isExact() &&
        ShlB->getLHS() == ShrB->getLHS() &&
        matchSpecificInt(ShlB->getRHS(), 8) &&
        matchSpecificInt(ShrB->getRHS(), 8) && W % 16 == 0) {
      bool Sound = W == 16;
      if (Sound || isBugEnabled(BugId::PR55484)) {
        Function *BSwap =
            M->getOrInsertIntrinsic(IntrinsicID::BSwap, B->getType());
        auto *Call = new CallInst(BSwap, {ShlB->getLHS()}, B->getType());
        Call->setName(B->getName());
        ins(BB, Idx, Call);
        replaceAndErase(B, Call);
        fireRule(RuleID::LW_Bswap16);
        return true;
      }
    }
  }

  auto matchShift = [&](Value *V, BinaryInst::BinOp Op, Value *&X,
                        APInt &Amt, bool &Masked, APInt &Mask) -> bool {
    Masked = false;
    auto *Bin = dyn_cast<BinaryInst>(V);
    if (!Bin)
      return false;
    if (Bin->getBinOp() == BinaryInst::And) {
      const ConstantInt *MC = matchConstInt(Bin->getRHS());
      auto *Inner = dyn_cast<BinaryInst>(Bin->getLHS());
      if (!MC || !Inner)
        return false;
      Masked = true;
      Mask = MC->getValue();
      Bin = Inner;
    }
    if (Bin->getBinOp() != Op || Bin->hasNUW() || Bin->hasNSW() ||
        Bin->isExact())
      return false;
    const ConstantInt *AC = matchConstInt(Bin->getRHS());
    if (!AC || AC->getValue().uge(APInt(W, W)))
      return false;
    X = Bin->getLHS();
    Amt = AC->getValue();
    return true;
  };

  Value *L = nullptr, *R = nullptr;
  APInt ShlAmt, LshrAmt, LMask = APInt::getZero(W), RMask = APInt::getZero(W);
  bool LMasked, RMasked;
  if (!matchShift(B->getLHS(), BinaryInst::Shl, L, ShlAmt, LMasked, LMask) ||
      !matchShift(B->getRHS(), BinaryInst::LShr, R, LshrAmt, RMasked,
                  RMask))
    return false;
  if (ShlAmt.isZero() || (ShlAmt + LshrAmt) != APInt(W, W))
    return false;

  // Mask validation (Table I bug 55201): a masked shift only forms a
  // rotate when the mask keeps every bit the shift produces.
  APInt NaturalL = APInt::getAllOnes(W).shl(ShlAmt);
  APInt NaturalR = APInt::getAllOnes(W).lshr(LshrAmt);
  bool MasksOk = (!LMasked || (LMask & NaturalL) == NaturalL) &&
                 (!RMasked || (RMask & NaturalR) == NaturalR);
  if (!MasksOk && !isBugEnabled(BugId::PR55201))
    return false;

  // Seeded crash 58423: the CSE-ing builder reused just-removed
  // instructions when the shifts had additional users.
  if (isBugEnabled(BugId::PR58423) &&
      (B->getLHS()->getNumUses() > 1 || B->getRHS()->getNumUses() > 1))
    optimizerCrash(BugId::PR58423,
                   "CSEMIIRBuilder reused a removed instruction");

  Function *Fshl = M->getOrInsertIntrinsic(IntrinsicID::Fshl, B->getType());
  auto *Call = new CallInst(Fshl, {L, R, intC(B->getType(), ShlAmt)},
                            B->getType());
  Call->setName(B->getName());
  ins(BB, Idx, Call);
  replaceAndErase(B, Call);
  fireRule(RuleID::LW_Rotate);
  return true;
}

/// 55287: x - (x/y)*y -> x % y. The buggy GlobalISel combine also matched
/// (x/y)*z with z != y.
bool LoweringPass::combineSub(BinaryInst *B, BasicBlock *BB, unsigned Idx) {
  auto *Mul = dyn_cast<BinaryInst>(B->getRHS());
  if (!Mul || Mul->getBinOp() != BinaryInst::Mul || Mul->hasNUW() ||
      Mul->hasNSW())
    return false;
  Value *X = B->getLHS();
  for (unsigned OpIdx = 0; OpIdx != 2; ++OpIdx) {
    auto *Div = dyn_cast<BinaryInst>(Mul->getOperand(OpIdx));
    if (!Div || Div->getBinOp() != BinaryInst::UDiv || Div->isExact())
      continue;
    if (Div->getLHS() != X)
      continue;
    Value *Y = Div->getRHS();
    Value *Other = Mul->getOperand(1 - OpIdx);
    bool Sound = Other == Y;
    if (Sound || isBugEnabled(BugId::PR55287)) {
      auto *Rem = new BinaryInst(BinaryInst::URem, X, Y);
      Rem->setName(B->getName());
      ins(BB, Idx, Rem);
      replaceAndErase(B, Rem);
      fireRule(RuleID::LW_URemRecompose);
      return true;
    }
  }
  return false;
}

/// 55296: trunc (urem (zext x), C) -> urem x, trunc(C) requires C to fit
/// the narrow type; the buggy promotion did not clear the promoted bits.
bool LoweringPass::combineTrunc(CastInst *C, BasicBlock *BB, unsigned Idx) {
  auto *Rem = dyn_cast<BinaryInst>(C->getSrc());
  if (!Rem || Rem->getBinOp() != BinaryInst::URem ||
      Rem->getNumOperands() != 2)
    return false;
  auto *Z = dyn_cast<CastInst>(Rem->getLHS());
  const ConstantInt *Div = matchConstInt(Rem->getRHS());
  if (!Z || Z->getCastOp() != CastInst::ZExt || !Div || Div->isZero())
    return false;
  unsigned NarrowW = C->getType()->getIntegerBitWidth();
  if (Z->getSrc()->getType() != C->getType())
    return false;
  bool Fits = Div->getValue().getActiveBits() <= NarrowW &&
              !Div->getValue().trunc(NarrowW).isZero();
  if (!Fits && !isBugEnabled(BugId::PR55296))
    return false;
  if (!Fits && Div->getValue().trunc(NarrowW).isZero())
    return false; // even the buggy combine cannot divide by zero
  auto *NewRem = new BinaryInst(BinaryInst::URem, Z->getSrc(),
                                intC(C->getType(),
                                     Div->getValue().trunc(NarrowW)));
  NewRem->setName(C->getName());
  ins(BB, Idx, NewRem);
  replaceAndErase(C, NewRem);
  fireRule(RuleID::LW_TruncNarrowURem);
  return true;
}

/// 58431: zext (trunc x) -> and x, lowmask. The buggy G_ZEXT selection
/// forgot the mask and emitted x directly.
bool LoweringPass::combineZExt(CastInst *C, BasicBlock *BB, unsigned Idx) {
  auto *T = dyn_cast<CastInst>(C->getSrc());
  if (!T || T->getCastOp() != CastInst::Trunc)
    return false;
  if (T->getSrc()->getType() != C->getType())
    return false;
  unsigned W = C->getType()->getIntegerBitWidth();
  unsigned MidW = T->getType()->getIntegerBitWidth();
  if (isBugEnabled(BugId::PR58431)) {
    replaceAndErase(C, T->getSrc()); // buggy: no mask
    fireRule(RuleID::LW_ZextTruncMask);
    return true;
  }
  auto *And = new BinaryInst(BinaryInst::And, T->getSrc(),
                             intC(C->getType(),
                                  APInt::getLowBitsSet(W, MidW)));
  And->setName(C->getName());
  ins(BB, Idx, And);
  replaceAndErase(C, And);
  fireRule(RuleID::LW_ZextTruncMask);
  return true;
}

/// 55342 / 55490 / 55627: promotion of narrow compares to 32 bits. The
/// constant must be extended to match the operand's extension (zext for
/// unsigned predicates and eq/ne, sext for signed). Three successive LLVM
/// fixes each covered part of the predicate space; the seeds mirror that:
/// 55342 breaks ugt/uge, 55490 breaks ult/ule, 55627 breaks eq/ne.
bool LoweringPass::combineICmp(ICmpInst *C, BasicBlock *BB, unsigned Idx) {
  if (!C->getLHS()->getType()->isIntegerTy())
    return false;
  unsigned W = C->getLHS()->getType()->getIntegerBitWidth();
  if (W != 8 && W != 16)
    return false; // promotion applies to sub-register widths
  const ConstantInt *RC = matchConstInt(C->getRHS());
  if (!RC || isa<Constant>(C->getLHS()))
    return false;

  Type *I32 = M->getTypes().getIntTy(32);
  ICmpInst::Predicate P = C->getPredicate();
  bool Signed = ICmpInst::isSigned(P);

  bool BuggySext = false;
  if (!Signed) {
    switch (P) {
    case ICmpInst::UGT:
    case ICmpInst::UGE:
      BuggySext = isBugEnabled(BugId::PR55342);
      break;
    case ICmpInst::ULT:
    case ICmpInst::ULE:
      BuggySext = isBugEnabled(BugId::PR55490);
      break;
    case ICmpInst::EQ:
    case ICmpInst::NE:
      BuggySext = isBugEnabled(BugId::PR55627);
      break;
    default:
      break;
    }
  }

  // The seeded variants only diverge on negative constants (sext != zext);
  // keep the transform itself narrow so pristine tests are unaffected:
  // only promote when the buggy behavior could matter or the compare is
  // signed (always-sound promotion).
  APInt CV = RC->getValue();
  APInt Promoted = Signed || BuggySext ? CV.sext(32) : CV.zext(32);
  auto *Ext = new CastInst(Signed ? CastInst::SExt : CastInst::ZExt,
                           C->getLHS(), I32);
  ins(BB, Idx, Ext);
  auto *NewCmp = new ICmpInst(P, Ext, intC(I32, Promoted),
                              M->getTypes().getIntTy(1));
  NewCmp->setName(C->getName());
  ins(BB, BB->indexOf(C), NewCmp);
  replaceAndErase(C, NewCmp);
  fireRule(RuleID::LW_NarrowCmp);
  return true;
}

/// 55484 + 58109 + 55271 + 59757 live on calls and call-shaped patterns.
bool LoweringPass::combineCall(CallInst *C, BasicBlock *BB, unsigned Idx) {
  Function *Callee = C->getCallee();

  // Seeded crash 59757: TargetLibraryInfo held a wrong signature for
  // printf; the analog trigger is a recognized libcall invoked with a null
  // pointer constant where the format string belongs.
  if (isBugEnabled(BugId::PR59757) && !Callee->isIntrinsic()) {
    const std::string &N = Callee->getName();
    if ((N == "printf" || N == "puts" || N == "memcpy") &&
        C->getNumArgs() >= 1 && isa<ConstantNullPtr>(C->getArg(0)))
      optimizerCrash(BugId::PR59757, "libcall signature mismatch for @" + N);
  }

  if (!Callee->isIntrinsic() || !C->getType()->isIntegerTy())
    return false;
  unsigned W = C->getType()->getIntegerBitWidth();
  IntrinsicID ID = Callee->getIntrinsicID();

  // 58109: usub.sat expansion. Correct: select(ult(x,y), 0, x-y).
  // Buggy: masks with the DIFFERENCE's sign bit instead of the borrow.
  if (ID == IntrinsicID::USubSat) {
    Value *X = C->getArg(0), *Y = C->getArg(1);
    auto *Sub = new BinaryInst(BinaryInst::Sub, X, Y);
    ins(BB, Idx, Sub);
    Instruction *Repl = nullptr;
    if (isBugEnabled(BugId::PR58109)) {
      auto *Sign = new BinaryInst(BinaryInst::AShr, Sub,
                                  intC(C->getType(), APInt(W, W - 1)));
      ins(BB, BB->indexOf(C), Sign);
      auto *NotSign = new BinaryInst(BinaryInst::Xor, Sign,
                                     intC(C->getType(),
                                          APInt::getAllOnes(W)));
      ins(BB, BB->indexOf(C), NotSign);
      Repl = new BinaryInst(BinaryInst::And, Sub, NotSign);
    } else {
      auto *Borrow = new ICmpInst(ICmpInst::ULT, X, Y,
                                  M->getTypes().getIntTy(1));
      ins(BB, BB->indexOf(C), Borrow);
      Repl = new SelectInst(Borrow, intC(C->getType(), APInt::getZero(W)),
                            Sub);
    }
    Repl->setName(C->getName());
    ins(BB, BB->indexOf(C), Repl);
    replaceAndErase(C, Repl);
    fireRule(RuleID::LW_USubSatExpand);
    return true;
  }

  // 55271: abs expansion. Correct: select(slt(x,0), sub 0, x, x) with nsw
  // ONLY when is_int_min_poison; the buggy expansion always adds nsw.
  if (ID == IntrinsicID::Abs) {
    Value *X = C->getArg(0);
    const ConstantInt *Flag = matchConstInt(C->getArg(1));
    if (!Flag)
      return false;
    bool IntMinPoison = !Flag->isZero();
    auto *Neg = new BinaryInst(BinaryInst::Sub,
                               intC(C->getType(), APInt::getZero(W)), X);
    if (IntMinPoison || isBugEnabled(BugId::PR55271))
      Neg->setNSW(true);
    ins(BB, Idx, Neg);
    auto *IsNeg = new ICmpInst(ICmpInst::SLT, X,
                               intC(C->getType(), APInt::getZero(W)),
                               M->getTypes().getIntTy(1));
    ins(BB, BB->indexOf(C), IsNeg);
    auto *Sel = new SelectInst(IsNeg, Neg, X);
    Sel->setName(C->getName());
    ins(BB, BB->indexOf(C), Sel);
    replaceAndErase(C, Sel);
    fireRule(RuleID::LW_AbsExpand);
    return true;
  }

  return false;
}

/// 58321: the backend dropped a freeze, miscompiling a frozen poison. The
/// correct pass leaves freeze alone.
bool LoweringPass::combineFreeze(FreezeInst *Fr, BasicBlock *BB,
                                 unsigned Idx) {
  if (!isBugEnabled(BugId::PR58321))
    return false;
  replaceAndErase(Fr, Fr->getSrc());
  fireRule(RuleID::LW_FreezeFold);
  return true;
}

} // namespace

std::unique_ptr<Pass> alive::createLoweringPass() {
  return std::make_unique<LoweringPass>();
}
