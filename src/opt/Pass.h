//===- opt/Pass.h - Pass framework -----------------------------*- C++ -*-===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer's pass framework: function passes, a pass manager with
/// fixed-point iteration, and a registry that resolves "-passes=..." names
/// and the -O1/-O2 pipelines (paper §III-C: "a sequence of built-in passes
/// ... or a canned sequence of passes such as -O1 or -O3").
///
//===----------------------------------------------------------------------===//

#ifndef OPT_PASS_H
#define OPT_PASS_H

#include "ir/Module.h"
#include "opt/BugInjection.h"
#include "support/Telemetry.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace alive {

class CancellationToken;
class TraceRecorder;

/// A function transformation pass.
class Pass {
public:
  virtual ~Pass() = default;

  /// The pass's registry name ("instcombine", "gvn", ...).
  virtual std::string getName() const = 0;

  /// Transforms \p F. \returns true when the function changed.
  virtual bool runOnFunction(Function &F) = 0;
};

/// Names of the functions some pass reported modifying during a pipeline
/// run. Passes already compute changed-ness per function to drive the
/// fixpoint loop; the pass manager surfaces it here instead of collapsing
/// it into one module-wide bool, so the fuzzing loop can skip the
/// refinement check for functions the pipeline never touched.
using ChangedFunctionSet = std::unordered_set<std::string>;

/// Runs a pipeline of passes over every definition in a module.
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }
  unsigned size() const { return (unsigned)Passes.size(); }

  /// Binds this pipeline to a campaign's bug-injection context: it is
  /// installed as the thread's ambient context for the duration of run().
  /// \p Ctx must outlive the PassManager. A null context (the default)
  /// leaves the caller's ambient context in effect instead.
  void setBugContext(const BugInjectionContext *Ctx) { BugCtx = Ctx; }
  const BugInjectionContext *bugContext() const { return BugCtx; }

  /// Attaches a telemetry registry (null detaches). Each run() sweep then
  /// records, per pass: "pass.<name>.invocations" (function-level runs)
  /// and "pass.<name>.changed" (runs that modified the function) — both
  /// deterministic per seed — plus a "pass.<name>.seconds" wall-time
  /// histogram per module sweep. \p Stats must outlive the PassManager.
  void setTelemetry(StatRegistry *Stats);

  /// Attaches a flight recorder (null detaches): each run() sweep then
  /// records one span per pass, named "pass.<name>", covering the pass's
  /// whole-module sweep. \p Trace must outlive the PassManager. Disabled
  /// cost is one pointer test per pass per sweep.
  void setTrace(TraceRecorder *Trace);

  /// Attaches an iteration watchdog (null detaches). run() then consumes
  /// one token step per pass-on-function invocation, installs the token as
  /// the thread's ambient token so long-running pass bodies can cooperate,
  /// and stops sweeping once the token trips — runToFixpoint likewise
  /// stops iterating. A cancelled run() still returns its accumulated
  /// changed flag; the caller decides what a cut-off pipeline means.
  /// \p Token must outlive the PassManager.
  void setCancellation(CancellationToken *Token) { Watchdog = Token; }

  /// Runs every pass once, in order, on every function definition.
  /// When \p ChangedOut is non-null, the names of modified functions are
  /// added to it. \returns true when anything changed.
  bool run(Module &M, ChangedFunctionSet *ChangedOut = nullptr);

  /// Runs the pipeline repeatedly until a fixed point (or \p MaxIter).
  /// \p ChangedOut (optional) accumulates the union of per-function
  /// changes across all fixpoint iterations.
  bool runToFixpoint(Module &M, unsigned MaxIter = 4,
                     ChangedFunctionSet *ChangedOut = nullptr);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
  const BugInjectionContext *BugCtx = nullptr;
  CancellationToken *Watchdog = nullptr;
  StatRegistry *Stats = nullptr;
  /// Cached stat slots, parallel to Passes (rebuilt lazily when passes are
  /// added after setTelemetry): the hot loop must not probe the registry
  /// map per pass per sweep.
  struct PassTelemetry {
    std::atomic<uint64_t> *Invocations = nullptr;
    std::atomic<uint64_t> *Changed = nullptr;
    Histogram *Seconds = nullptr;
  };
  std::vector<PassTelemetry> PassStats;
  TraceRecorder *Trace = nullptr;
  /// Interned "pass.<name>" span labels, parallel to Passes (rebuilt
  /// lazily, like PassStats): span events outlive the pass objects, so
  /// the labels must live in the recorder, not here.
  std::vector<const char *> PassTraceNames;
};

/// Creates a pass by registry name; null for unknown names.
std::unique_ptr<Pass> createPassByName(const std::string &Name);

/// All registered pass names.
std::vector<std::string> allPassNames();

/// Parses a pipeline description: comma-separated pass names, or the
/// pseudo-names "O1"/"O2" (also accepted with a leading '-').
/// \returns false and fills \p Error on unknown names.
bool buildPipeline(const std::string &Desc, PassManager &PM,
                   std::string &Error);

// Factories for the individual passes.
std::unique_ptr<Pass> createInstSimplifyPass();
std::unique_ptr<Pass> createInstCombinePass();
std::unique_ptr<Pass> createConstantFoldPass();
std::unique_ptr<Pass> createDCEPass();
std::unique_ptr<Pass> createGVNPass();
std::unique_ptr<Pass> createSimplifyCFGPass();
std::unique_ptr<Pass> createReassociatePass();
std::unique_ptr<Pass> createSROAPass();
std::unique_ptr<Pass> createVectorCombinePass();
std::unique_ptr<Pass> createInferAlignmentPass();
std::unique_ptr<Pass> createMoveAutoInitPass();
std::unique_ptr<Pass> createLoweringPass();

// Fault-injection passes (TestPasses.cpp) for exercising the campaign's
// survivability machinery: never part of O1/O2, only reachable by naming
// them in -passes=.
std::unique_ptr<Pass> createTestSlowPass();
std::unique_ptr<Pass> createTestCrashPass();
std::unique_ptr<Pass> createTestAbortPass();

} // namespace alive

#endif // OPT_PASS_H
