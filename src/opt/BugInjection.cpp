//===- opt/BugInjection.cpp - Seeded Table I defects ------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/BugInjection.h"

#include <cassert>

using namespace alive;

const std::vector<BugInfo> &alive::bugTable() {
  static const std::vector<BugInfo> Table = {
      {BugId::PR53252, "53252", "InstCombine", "fixed", false,
       "didn't update predicate in function 'canonicalizeClampLike'"},
      {BugId::PR50693, "50693", "InstCombine", "fixed", false,
       "missing a simplification of the opposite shifts of -1"},
      {BugId::PR53218, "53218", "NewGVN", "fixed", false,
       "need to merge IR flags of the removed instruction into the leader"},
      {BugId::PR55003, "55003", "AArch64 backend", "fixed", false,
       "need to combine GSIL, GASHR, GSIL of undef shifts to undef"},
      {BugId::PR55201, "55201", "AArch64 backend", "fixed", false,
       "when matching a disguised rotate by constant should apply "
       "LHSMask/RHSmask"},
      {BugId::PR55129, "55129", "AArch64 backend", "fixed", false,
       "zero-width bitfield extracts to emit 0"},
      {BugId::PR55271, "55271", "multiple backends", "fixed", false,
       "missing a freeze to ISD::ABS expansion"},
      {BugId::PR55284, "55284", "AArch64 backend", "fixed", false,
       "an or+and miscompile within GlobalISel"},
      {BugId::PR55287, "55287", "AArch64 backend", "fixed", false,
       "an urem+udiv miscompilation within GlobalISel"},
      {BugId::PR55296, "55296", "multiple backends", "fixed", false,
       "didn't clear promoted bits before urem on shift amount"},
      {BugId::PR55342, "55342", "AArch64 backend", "fixed", false,
       "sext and zext selection in promoted constant"},
      {BugId::PR55484, "55484", "multiple backends", "fixed", false,
       "wrong match in in MatchBSwapHWordLow"},
      {BugId::PR55490, "55490", "AArch64 backend", "fixed", false,
       "another sext and zext selection in promoted constant"},
      {BugId::PR55627, "55627", "AArch64 backend", "fixed", false,
       "refine sext and zext selection"},
      {BugId::PR55833, "55833", "AArch64 backend", "fixed", false,
       "conflict between the selection code in tryBitfieldExtractOp and "
       "isDef32"},
      {BugId::PR58109, "58109", "AArch64 backend", "fixed", false,
       "wrong code generation in usub.sat"},
      {BugId::PR58321, "58321", "AArch64 backend", "open", false,
       "miscompilation of a frozen poison"},
      {BugId::PR58431, "58431", "AArch64 backend", "fixed", false,
       "wrong GZEXT selection GISel"},
      {BugId::PR59836, "59836", "InstCombine", "fixed", false,
       "precondition of a peephole optimization is too weak"},
      {BugId::PR52884, "52884", "InstCombine", "fixed", true,
       "analysis got thwarted by having both \"nuw\" and \"nsw\" on the add"},
      {BugId::PR51618, "51618", "newGVN", "open", true,
       "PHI nodes with undef input"},
      {BugId::PR56377, "56377", "VectorCombine", "fixed", true,
       "created shuffle for extract-extract pattern on scalable vector"},
      {BugId::PR56463, "56463", "InstCombine", "fixed", true,
       "calling a function with a bad signature"},
      {BugId::PR56945, "56945", "ConstantFolding", "fixed", true,
       "the dyn_cast to a ConstantInt would fail with a poison input"},
      {BugId::PR56968, "56968", "InstSimplify", "fixed", true,
       "uncovered condition in detecting a poison shift"},
      {BugId::PR56981, "56981", "ConstantFolding", "fixed", true,
       "assertion is too strong"},
      {BugId::PR58423, "58423", "AArch64 backend", "fixed", true,
       "CSEMIIRBuilder reuse removed instructions"},
      {BugId::PR58425, "58425", "AArch64 backend", "fixed", true,
       "udiv did not reach the legalizer"},
      {BugId::PR59757, "59757", "TargetLibraryInfo", "fixed", true,
       "signature for printf is wrong"},
      {BugId::PR64687, "64687", "AlignmentFromAssumptions", "fixed", true,
       "missing a corner case"},
      {BugId::PR64661, "64661", "MoveAutoInit", "fixed", true,
       "the assertion is too strong"},
      {BugId::PR72035, "72035", "SROA", "open", true,
       "wrong code in AllocaSliceRewriter"},
      {BugId::PR72034, "72034", "VectorCombine", "fixed", true,
       "wrong code in scalarizeVPItrinsic"},
  };
  return Table;
}

const BugInfo &alive::bugInfo(BugId Id) {
  for (const BugInfo &B : bugTable())
    if (B.Id == Id)
      return B;
  assert(false && "unknown bug id");
  return bugTable().front();
}

// The 33 BugIds must fit the context's 64-bit mask.
static_assert(unsigned(BugId::PR72034) < 64, "BugId overflows context mask");

void BugInjectionContext::enableAll() {
  for (const BugInfo &B : bugTable())
    enable(B.Id);
}

namespace {
/// The ambient per-thread context. Thread-local so concurrent campaign
/// workers each see only their own campaign's defects.
thread_local const BugInjectionContext *ActiveBugCtx = nullptr;
} // namespace

BugContextScope::BugContextScope(const BugInjectionContext *Ctx)
    : Prev(ActiveBugCtx) {
  ActiveBugCtx = Ctx;
}

BugContextScope::~BugContextScope() { ActiveBugCtx = Prev; }

const BugInjectionContext *alive::activeBugContext() { return ActiveBugCtx; }

bool alive::isBugEnabled(BugId Id) {
  return ActiveBugCtx && ActiveBugCtx->isEnabled(Id);
}

void alive::optimizerCrash(BugId Id, const std::string &What) {
  assert(isBugEnabled(Id) && "crash raised for a disabled bug");
  throw OptimizerCrash{Id, What};
}
