//===- opt/RuleIDs.cpp - Stable per-rule fire IDs ---------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "opt/RuleIDs.h"

#include <cassert>
#include <cstddef>

using namespace alive;

thread_local uint64_t *alive::detail::ActiveRuleWords = nullptr;

const char *alive::ruleName(RuleID R) {
  // Frozen slugs — see the stability contract in RuleIDs.h. Indexed by the
  // enum value; keep in exact sync with the enum order.
  static const char *const Names[] = {
      "instcombine.commute_const",
      "instcombine.add_self_shl",
      "instcombine.add_not_to_sub",
      "instcombine.add_const_merge",
      "instcombine.sub_of_add",
      "instcombine.mul_pow2_shl",
      "instcombine.mul_zext_nuw",
      "instcombine.udiv_pow2_lshr",
      "instcombine.urem_pow2_and",
      "instcombine.xor_self_zero",
      "instcombine.xor_chain_cancel",
      "instcombine.and_absorb",
      "instcombine.or_absorb",
      "instcombine.lshr_shl_allones",
      "instcombine.shl_lshr_to_and",
      "instcombine.add_nocommon_or",
      "instcombine.icmp_commute",
      "instcombine.icmp_strictness",
      "instcombine.select_neg_cond",
      "instcombine.select_bool_id",
      "instcombine.select_bool_not",
      "instcombine.cast_chain",
      "instcombine.minmax_same",
      "instcombine.minmax_identity",
      "instcombine.minmax_absorb",
      "instcombine.bswap_bswap",
      "instcombine.uadd_sat_zero",
      "instcombine.usub_sat_fold",
      "gvn.unify",
      "gvn.flag_intersect",
      "scalar.instsimplify",
      "scalar.constfold",
      "scalar.dce_erase",
      "scalar.reassoc_const_right",
      "scalar.reassoc_const_merge",
      "scalar.cfg_fold_branch",
      "scalar.cfg_fold_switch",
      "scalar.cfg_remove_unreachable",
      "scalar.cfg_merge_blocks",
      "lowering.lshr_bitfield",
      "lowering.ashr_sext",
      "lowering.and_or_mask",
      "lowering.bitfield_extract",
      "lowering.bswap16",
      "lowering.rotate",
      "lowering.urem_recompose",
      "lowering.trunc_narrow_urem",
      "lowering.zext_trunc_mask",
      "lowering.narrow_cmp",
      "lowering.usub_sat_expand",
      "lowering.abs_expand",
      "lowering.freeze_fold",
  };
  static_assert(sizeof(Names) / sizeof(Names[0]) ==
                    (std::size_t)RuleID::NumRules,
                "ruleName table out of sync with the RuleID enum");
  assert((unsigned)R < (unsigned)RuleID::NumRules && "invalid rule id");
  return Names[(unsigned)R];
}
