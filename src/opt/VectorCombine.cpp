//===- opt/VectorCombine.cpp - Vector peepholes -----------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector peepholes: scalarizing extracts of elementwise operations and
/// folding extract-of-insert. Hosts two seeded Table I crash defects:
///
///   56377: the extract-extract shuffle builder crashed on scalable
///     vectors; the analog trigger is an out-of-range constant extract
///     index flowing into the shuffle builder.
///   72034: scalarizeVPIntrinsic produced wrong code; the analog trigger
///     is scalarizing a binop whose constant-vector operand contains a
///     poison lane.
///
//===----------------------------------------------------------------------===//

#include "opt/BugInjection.h"
#include "opt/OptUtils.h"
#include "opt/Pass.h"

using namespace alive;

namespace {

class VectorCombinePass : public Pass {
public:
  std::string getName() const override { return "vector-combine"; }

  bool runOnFunction(Function &F) override {
    M = F.getParent();
    bool Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
        Instruction *I = BB->getInst(Idx);
        if (auto *E = dyn_cast<ExtractElementInst>(I)) {
          if (combineExtract(E, BB, Idx)) {
            Changed = true;
            Idx = (unsigned)-1;
          }
        }
      }
    }
    return Changed;
  }

private:
  Module *M = nullptr;

  bool combineExtract(ExtractElementInst *E, BasicBlock *BB, unsigned Idx) {
    const ConstantInt *IdxC = matchConstInt(E->getIndex());
    if (!IdxC)
      return false;
    auto *VT = cast<VectorType>(E->getVector()->getType());
    uint64_t Lane = IdxC->getValue().getLoBits64();
    bool OutOfRange = IdxC->getValue().uge(
        APInt(IdxC->getValue().getBitWidth(), VT->getNumElements()));

    // Seeded crash 56377: building a shuffle for the extract-extract
    // pattern without validating the lane (scalable-vector analog).
    if (OutOfRange) {
      if (isBugEnabled(BugId::PR56377) &&
          isa<ShuffleVectorInst>(E->getVector()))
        optimizerCrash(BugId::PR56377,
                       "shuffle for extract-extract pattern with invalid "
                       "lane " + std::to_string(Lane));
      return false; // correct behavior: the extract is poison; leave it
    }

    // extract(insert(v, x, Lane), Lane) -> x.
    if (auto *Ins = dyn_cast<InsertElementInst>(E->getVector())) {
      const ConstantInt *InsIdx = matchConstInt(Ins->getIndex());
      if (InsIdx && InsIdx->getValue() == IdxC->getValue().zextOrTrunc(
                                              InsIdx->getValue().getBitWidth())) {
        replaceAndErase(E, Ins->getElement());
        return true;
      }
    }

    // extract(constvector, Lane) -> element.
    if (auto *CV = dyn_cast<ConstantVector>(E->getVector())) {
      replaceAndErase(E, CV->getElement((unsigned)Lane));
      return true;
    }

    // extract(binop(a, b), Lane) -> binop(extract(a,Lane), extract(b,Lane)).
    if (auto *Bin = dyn_cast<BinaryInst>(E->getVector())) {
      // Seeded crash 72034: scalarizing when an operand constant vector
      // has a poison lane.
      if (isBugEnabled(BugId::PR72034)) {
        for (Value *Op : {Bin->getLHS(), Bin->getRHS()})
          if (auto *CV = dyn_cast<ConstantVector>(Op))
            for (unsigned K = 0; K != CV->getNumElements(); ++K)
              if (isa<ConstantPoison>(CV->getElement(K)))
                optimizerCrash(BugId::PR72034,
                               "scalarize of vector op with poison lane");
      }
      // Only scalarize single-use vectors (profitability stand-in) and
      // flag-free binops (scalar flags semantics match, but keep simple).
      if (E->getVector()->getNumUses() != 1)
        return false;
      auto scalarOf = [&](Value *V) -> Value * {
        if (auto *CV = dyn_cast<ConstantVector>(V))
          return CV->getElement((unsigned)Lane);
        auto *Ext = new ExtractElementInst(V, E->getIndex());
        insertBefore(BB, Idx, Ext);
        return Ext;
      };
      Value *A = scalarOf(Bin->getLHS());
      unsigned NewIdx = BB->indexOf(E); // extracts may have shifted E
      (void)NewIdx;
      Value *Bv = scalarOf(Bin->getRHS());
      auto *Scalar = new BinaryInst(Bin->getBinOp(), A, Bv);
      Scalar->setNUW(Bin->hasNUW());
      Scalar->setNSW(Bin->hasNSW());
      Scalar->setExact(Bin->isExact());
      Scalar->setName(E->getName());
      insertBefore(BB, BB->indexOf(E), Scalar);
      replaceAndErase(E, Scalar);
      return true;
    }
    return false;
  }

  void insertBefore(BasicBlock *BB, unsigned Idx, Instruction *I) {
    BB->insert(Idx, std::unique_ptr<Instruction>(I));
  }
};

} // namespace

std::unique_ptr<Pass> alive::createVectorCombinePass() {
  return std::make_unique<VectorCombinePass>();
}
