//===- opt/TestPasses.cpp - Fault-injection passes --------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deliberately misbehaving passes for exercising the campaign's
/// survivability machinery end to end:
///
///   - test-slow  — spins until the iteration watchdog trips (or a safety
///     cap, so a watchdog-less pipeline still terminates);
///   - test-crash — dereferences null when it sees a function whose name
///     starts with "crashme" (SIGSEGV, for -isolate containment tests);
///   - test-abort — calls std::abort() on functions named "abortme*"
///     (SIGABRT, for the in-process signal-guard tests).
///
/// None of these are part of O1/O2; they only run when named explicitly in
/// -passes=. The name-triggered ones are no-ops elsewhere, so a corpus
/// without trigger functions runs them harmlessly.
///
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "support/Cancellation.h"

#include <cstdlib>

using namespace alive;

namespace {

class TestSlowPass : public Pass {
public:
  std::string getName() const override { return "test-slow"; }

  bool runOnFunction(Function &F) override {
    (void)F;
    // Consume steps through the ambient token the PassManager installs.
    // With a watchdog armed this returns as soon as the budget trips; the
    // hard cap keeps watchdog-less pipelines (unit tests, amut-opt) from
    // hanging forever.
    CancellationToken *Token = currentCancellationToken();
    constexpr uint64_t ChunkSteps = 4096;
    constexpr uint64_t MaxChunks = (1ull << 20) / ChunkSteps;
    for (uint64_t Chunk = 0; Chunk != MaxChunks; ++Chunk) {
      if (Token && Token->consume(ChunkSteps))
        break;
      // Busy-work the optimizer cannot elide, so wall-clock watchdogs see
      // genuine elapsed time rather than an empty loop.
      volatile uint64_t Sink = 0;
      for (uint64_t I = 0; I != ChunkSteps; ++I)
        Sink += I * 2654435761u;
    }
    return false;
  }
};

class TestCrashPass : public Pass {
public:
  std::string getName() const override { return "test-crash"; }

  bool runOnFunction(Function &F) override {
    if (F.getName().rfind("crashme", 0) == 0) {
      // Volatile null dereference: a genuine SIGSEGV the isolation layer
      // must contain, not something the compiler can fold away.
      volatile int *Null = nullptr;
      *Null = 42;
    }
    return false;
  }
};

class TestAbortPass : public Pass {
public:
  std::string getName() const override { return "test-abort"; }

  bool runOnFunction(Function &F) override {
    if (F.getName().rfind("abortme", 0) == 0)
      std::abort();
    return false;
  }
};

} // namespace

std::unique_ptr<Pass> alive::createTestSlowPass() {
  return std::make_unique<TestSlowPass>();
}

std::unique_ptr<Pass> alive::createTestCrashPass() {
  return std::make_unique<TestCrashPass>();
}

std::unique_ptr<Pass> alive::createTestAbortPass() {
  return std::make_unique<TestAbortPass>();
}
