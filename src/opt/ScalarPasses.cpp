//===- opt/ScalarPasses.cpp - InstSimplify, ConstantFold, DCE, etc ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simpler scalar passes: InstSimplify (fold to existing values),
/// ConstantFold, DCE, Reassociate, and SimplifyCFG. InstSimplify hosts the
/// seeded crash 56968 (poison-shift detection had an uncovered condition).
///
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "opt/BugInjection.h"
#include "opt/OptUtils.h"
#include "opt/Pass.h"
#include "opt/RuleIDs.h"

#include <set>

using namespace alive;

namespace {

//===----------------------------------------------------------------------===//
// InstSimplify
//===----------------------------------------------------------------------===//

/// Simplifies \p I to an existing value, or null.
Value *simplifyInstruction(Instruction *I, Module &M) {
  ConstantPoolCtx &CP = M.getConstants();

  if (auto *B = dyn_cast<BinaryInst>(I)) {
    if (!B->getType()->isIntegerTy())
      return nullptr;
    Value *L = B->getLHS(), *R = B->getRHS();
    unsigned W = B->getType()->getIntegerBitWidth();
    const ConstantInt *RC = matchConstInt(R);
    const ConstantInt *LC = matchConstInt(L);

    switch (B->getBinOp()) {
    case BinaryInst::Add:
      if (RC && RC->isZero())
        return L;
      if (LC && LC->isZero())
        return R;
      break;
    case BinaryInst::Sub:
      if (RC && RC->isZero())
        return L;
      if (L == R && !B->hasNUW() && !B->hasNSW())
        return mkIntLike(B, APInt::getZero(W), M);
      break;
    case BinaryInst::Mul:
      if (RC && RC->isOne())
        return L;
      if (LC && LC->isOne())
        return R;
      if ((RC && RC->isZero()) || (LC && LC->isZero()))
        return mkIntLike(B, APInt::getZero(W), M);
      break;
    case BinaryInst::UDiv:
    case BinaryInst::SDiv:
      if (RC && RC->isOne())
        return L;
      // x / x == 1: refines away the x==0 UB, which is legal.
      if (L == R)
        return mkIntLike(B, APInt::getOne(W), M);
      break;
    case BinaryInst::URem:
    case BinaryInst::SRem:
      if (RC && RC->isOne())
        return mkIntLike(B, APInt::getZero(W), M);
      if (L == R)
        return mkIntLike(B, APInt::getZero(W), M);
      break;
    case BinaryInst::Shl:
    case BinaryInst::LShr:
    case BinaryInst::AShr: {
      if (RC && RC->isZero())
        return L;
      if (RC) {
        const APInt &Amt = RC->getValue();
        // Oversized constant shift amounts produce poison. The original
        // check tested Amt > W; Amt == W was the uncovered condition of
        // seeded crash 56968.
        if (Amt == APInt(W, W)) {
          if (isBugEnabled(BugId::PR56968))
            optimizerCrash(BugId::PR56968,
                           "shift amount equals bit width in poison-shift "
                           "detection");
          return CP.getPoison(B->getType());
        }
        if (Amt.ugt(APInt(W, W)))
          return CP.getPoison(B->getType());
      }
      if (LC && LC->isZero() && B->getBinOp() != BinaryInst::Shl)
        return mkIntLike(B, APInt::getZero(W), M);
      break;
    }
    case BinaryInst::And:
      if (L == R)
        return L;
      if (RC && RC->isZero())
        return mkIntLike(B, APInt::getZero(W), M);
      if (RC && RC->isAllOnes())
        return L;
      if (LC && LC->isZero())
        return mkIntLike(B, APInt::getZero(W), M);
      if (LC && LC->isAllOnes())
        return R;
      break;
    case BinaryInst::Or:
      if (L == R)
        return L;
      if (RC && RC->isZero())
        return L;
      if (RC && RC->isAllOnes())
        return mkIntLike(B, APInt::getAllOnes(W), M);
      if (LC && LC->isZero())
        return R;
      if (LC && LC->isAllOnes())
        return mkIntLike(B, APInt::getAllOnes(W), M);
      break;
    case BinaryInst::Xor:
      if (L == R)
        return mkIntLike(B, APInt::getZero(W), M);
      if (RC && RC->isZero())
        return L;
      if (LC && LC->isZero())
        return R;
      break;
    case BinaryInst::NumBinOps:
      break;
    }
    return nullptr;
  }

  if (auto *C = dyn_cast<ICmpInst>(I)) {
    Value *L = C->getLHS(), *R = C->getRHS();
    TypeContext &TC = M.getTypes();
    // Identical operands: the predicate decides (refines away poison).
    if (L == R) {
      switch (C->getPredicate()) {
      case ICmpInst::EQ:
      case ICmpInst::ULE:
      case ICmpInst::UGE:
      case ICmpInst::SLE:
      case ICmpInst::SGE:
        return CP.getBool(TC, true);
      default:
        return CP.getBool(TC, false);
      }
    }
    if (!L->getType()->isIntegerTy())
      return nullptr;
    unsigned W = L->getType()->getIntegerBitWidth();
    const ConstantInt *RC = matchConstInt(R);
    if (RC) {
      const APInt &V = RC->getValue();
      switch (C->getPredicate()) {
      case ICmpInst::ULT:
        if (V.isZero())
          return CP.getBool(TC, false);
        break;
      case ICmpInst::UGE:
        if (V.isZero())
          return CP.getBool(TC, true);
        break;
      case ICmpInst::UGT:
        if (V.isAllOnes())
          return CP.getBool(TC, false);
        break;
      case ICmpInst::ULE:
        if (V.isAllOnes())
          return CP.getBool(TC, true);
        break;
      case ICmpInst::SLT:
        if (V.isSignedMinValue())
          return CP.getBool(TC, false);
        break;
      case ICmpInst::SGE:
        if (V.isSignedMinValue())
          return CP.getBool(TC, true);
        break;
      case ICmpInst::SGT:
        if (V.isSignedMaxValue())
          return CP.getBool(TC, false);
        break;
      case ICmpInst::SLE:
        if (V.isSignedMaxValue())
          return CP.getBool(TC, true);
        break;
      default:
        break;
      }
      (void)W;
    }
    return nullptr;
  }

  if (auto *S = dyn_cast<SelectInst>(I)) {
    if (S->getTrueValue() == S->getFalseValue())
      return S->getTrueValue();
    if (const auto *CC = matchConstInt(S->getCondition()))
      return CC->isZero() ? S->getFalseValue() : S->getTrueValue();
    return nullptr;
  }

  if (auto *F = dyn_cast<FreezeInst>(I)) {
    // freeze of a non-poison-producing value is the value itself.
    Value *Src = F->getSrc();
    if (isa<ConstantInt>(Src) || isa<ConstantNullPtr>(Src))
      return Src;
    if (isa<Argument>(Src) && Src->getType()->isIntegerTy()) {
      // Only sound when the argument cannot be poison (noundef).
      const auto *A = cast<Argument>(Src);
      const Function *Fn = I->getFunction();
      if (Fn && A->getIndex() < Fn->getNumArgs() &&
          Fn->paramAttrs(A->getIndex()).NoUndef)
        return Src;
    }
    if (auto *FF = dyn_cast<FreezeInst>(Src))
      return FF; // freeze(freeze(x)) == freeze(x)
    return nullptr;
  }

  if (auto *Phi = dyn_cast<PhiNode>(I)) {
    // All incoming values identical and position-independent.
    Value *Common = nullptr;
    for (unsigned K = 0; K != Phi->getNumIncoming(); ++K) {
      Value *In = Phi->getIncomingValue(K);
      if (In == Phi)
        continue;
      if (Common && In != Common)
        return nullptr;
      Common = In;
    }
    if (Common && (isa<Constant>(Common) || isa<Argument>(Common)))
      return Common;
    return nullptr;
  }

  return nullptr;
}

class InstSimplifyPass : public Pass {
public:
  std::string getName() const override { return "instsimplify"; }

  bool runOnFunction(Function &F) override {
    Module &M = *F.getParent();
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      for (BasicBlock *BB : F.blocks()) {
        for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
          Instruction *I = BB->getInst(Idx);
          if (I->isTerminator())
            continue;
          if (Value *V = simplifyInstruction(I, M)) {
            replaceAndErase(I, V);
            fireRule(RuleID::IS_Simplify);
            LocalChange = Changed = true;
            --Idx;
          }
        }
      }
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// ConstantFold
//===----------------------------------------------------------------------===//

class ConstantFoldPass : public Pass {
public:
  std::string getName() const override { return "constfold"; }

  bool runOnFunction(Function &F) override {
    Module &M = *F.getParent();
    bool Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      for (unsigned Idx = 0; Idx != BB->size(); ++Idx) {
        Instruction *I = BB->getInst(Idx);
        if (I->isTerminator() || I->getType()->isVoidTy())
          continue;
        if (Constant *C = tryConstantFold(I, M)) {
          replaceAndErase(I, C);
          fireRule(RuleID::CF_ConstFold);
          Changed = true;
          --Idx;
        }
      }
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

class DCEPass : public Pass {
public:
  std::string getName() const override { return "dce"; }
  bool runOnFunction(Function &F) override {
    bool Changed = removeDeadInstructions(F);
    if (Changed)
      fireRule(RuleID::DCE_Erase);
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// Reassociate
//===----------------------------------------------------------------------===//

class ReassociatePass : public Pass {
public:
  std::string getName() const override { return "reassociate"; }

  bool runOnFunction(Function &F) override {
    Module &M = *F.getParent();
    bool Changed = false;
    for (BasicBlock *BB : F.blocks()) {
      for (Instruction *I : BB->insts()) {
        auto *B = dyn_cast<BinaryInst>(I);
        if (!B || !B->getType()->isIntegerTy())
          continue;
        if (!BinaryInst::isCommutative(B->getBinOp()))
          continue;
        // Canonicalize constants to the right.
        if (isa<ConstantInt>(B->getLHS()) && !isa<Constant>(B->getRHS())) {
          Value *L = B->getLHS(), *R = B->getRHS();
          B->setOperand(0, R);
          B->setOperand(1, L);
          fireRule(RuleID::RA_ConstRight);
          Changed = true;
        }
        // (x op C1) op C2 -> x op (C1 op C2); poison flags are dropped
        // because reassociation does not preserve them.
        const auto *C2 = matchConstInt(B->getRHS());
        auto *Inner = dyn_cast<BinaryInst>(B->getLHS());
        if (C2 && Inner && Inner->getBinOp() == B->getBinOp() &&
            Inner->getType() == B->getType()) {
          const auto *C1 = matchConstInt(Inner->getRHS());
          if (C1) {
            Constant *Folded =
                foldBinaryConst(B->getBinOp(), false, false, false,
                                C1->getValue(), C2->getValue(), M);
            if (Folded && isa<ConstantInt>(Folded)) {
              B->setOperand(0, Inner->getLHS());
              B->setOperand(1, Folded);
              B->clearFlags();
              fireRule(RuleID::RA_ConstMerge);
              Changed = true;
            }
          }
        }
      }
    }
    return Changed;
  }
};

//===----------------------------------------------------------------------===//
// SimplifyCFG
//===----------------------------------------------------------------------===//

class SimplifyCFGPass : public Pass {
public:
  std::string getName() const override { return "simplifycfg"; }

  bool runOnFunction(Function &F) override {
    Module &M = *F.getParent();
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      LocalChange |= foldConstantBranches(F, M);
      LocalChange |= removeUnreachableBlocks(F);
      LocalChange |= mergeStraightLine(F);
      Changed |= LocalChange;
    }
    return Changed;
  }

private:
  bool foldConstantBranches(Function &F, Module &M) {
    bool Changed = false;
    Type *VoidTy = M.getTypes().getVoidTy();
    for (BasicBlock *BB : F.blocks()) {
      Instruction *T = BB->getTerminator();
      if (auto *Br = dyn_cast<BranchInst>(T)) {
        if (!Br->isConditional())
          continue;
        BasicBlock *Taken = nullptr, *NotTaken = nullptr;
        if (const auto *C = matchConstInt(Br->getCondition())) {
          Taken = Br->getSuccessor(C->isZero() ? 1 : 0);
          NotTaken = Br->getSuccessor(C->isZero() ? 0 : 1);
        } else if (Br->getSuccessor(0) == Br->getSuccessor(1)) {
          // Both arms identical: condition is dead (but branching on
          // poison would have been UB; folding away refines).
          Taken = Br->getSuccessor(0);
          NotTaken = nullptr;
        }
        if (!Taken)
          continue;
        if (NotTaken && NotTaken != Taken)
          removePhiEntries(NotTaken, BB);
        BB->erase(Br);
        BB->append(std::make_unique<BranchInst>(Taken, VoidTy));
        fireRule(RuleID::CFG_FoldBranch);
        Changed = true;
      } else if (auto *Sw = dyn_cast<SwitchInst>(T)) {
        const auto *C = matchConstInt(Sw->getCondition());
        if (!C)
          continue;
        BasicBlock *Dest = Sw->getDefaultDest();
        for (unsigned K = 0; K != Sw->getNumCases(); ++K)
          if (Sw->getCaseValue(K) == C->getValue()) {
            Dest = Sw->getCaseDest(K);
            break;
          }
        // Drop phi entries of the not-taken successors.
        std::set<BasicBlock *> Seen{Dest};
        for (unsigned K = 0; K != Sw->getNumSuccessors(); ++K) {
          BasicBlock *S = Sw->getSuccessor(K);
          if (Seen.insert(S).second)
            removePhiEntries(S, BB);
        }
        BB->erase(Sw);
        BB->append(std::make_unique<BranchInst>(Dest, VoidTy));
        fireRule(RuleID::CFG_FoldSwitch);
        Changed = true;
      }
    }
    return Changed;
  }

  void removePhiEntries(BasicBlock *Block, BasicBlock *Pred) {
    for (Instruction *I : Block->insts()) {
      auto *Phi = dyn_cast<PhiNode>(I);
      if (!Phi)
        break;
      for (unsigned K = Phi->getNumIncoming(); K-- > 0;)
        if (Phi->getIncomingBlock(K) == Pred)
          Phi->removeIncoming(K);
    }
  }

  bool removeUnreachableBlocks(Function &F) {
    // Mark reachable.
    std::set<const BasicBlock *> Reached;
    std::vector<BasicBlock *> Work{F.getEntryBlock()};
    Reached.insert(F.getEntryBlock());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *S : BB->successors())
        if (Reached.insert(S).second)
          Work.push_back(S);
    }
    std::vector<BasicBlock *> Dead;
    for (BasicBlock *BB : F.blocks())
      if (!Reached.count(BB))
        Dead.push_back(BB);
    if (Dead.empty())
      return false;

    // Remove phi entries flowing from dead blocks into live ones, then
    // detach and erase the dead blocks as a group.
    for (BasicBlock *D : Dead)
      for (BasicBlock *S : D->successors())
        if (Reached.count(S))
          removePhiEntries(S, D);
    for (BasicBlock *D : Dead)
      for (Instruction *I : D->insts())
        I->dropAllOperands();
    // Any remaining uses of dead-block values must themselves be in dead
    // blocks (the verifier guarantees reachable code never uses them), so
    // RAUW is unnecessary; erase in one sweep.
    for (BasicBlock *D : Dead)
      F.eraseBlock(D);
    fireRule(RuleID::CFG_RemoveUnreachable);
    return true;
  }

  bool mergeStraightLine(Function &F) {
    for (BasicBlock *BB : F.blocks()) {
      auto *Br = dyn_cast<BranchInst>(BB->getTerminator());
      if (!Br || Br->isConditional())
        continue;
      BasicBlock *Succ = Br->getSuccessor(0);
      if (Succ == BB || Succ == F.getEntryBlock())
        continue;
      std::vector<BasicBlock *> Preds = F.predecessors(Succ);
      if (Preds.size() != 1)
        continue;
      // Resolve phis in Succ to their unique incoming value.
      while (!Succ->empty()) {
        auto *Phi = dyn_cast<PhiNode>(Succ->front());
        if (!Phi)
          break;
        Value *In = Phi->getIncomingValueForBlock(BB);
        assert(In && "phi without entry for unique predecessor");
        replaceAndErase(Phi, In);
      }
      // Splice instructions.
      BB->erase(Br);
      while (!Succ->empty()) {
        Instruction *I = Succ->front();
        BB->append(Succ->take(I));
      }
      // Phis in the successors of Succ now flow from BB.
      for (BasicBlock *SS : BB->successors())
        for (Instruction *I : SS->insts()) {
          auto *Phi = dyn_cast<PhiNode>(I);
          if (!Phi)
            break;
          for (unsigned K = 0; K != Phi->getNumIncoming(); ++K)
            if (Phi->getIncomingBlock(K) == Succ)
              Phi->setIncomingBlock(K, BB);
        }
      F.eraseBlock(Succ);
      fireRule(RuleID::CFG_MergeBlocks);
      return true; // block list changed; restart iteration
    }
    return false;
  }
};

} // namespace

std::unique_ptr<Pass> alive::createInstSimplifyPass() {
  return std::make_unique<InstSimplifyPass>();
}
std::unique_ptr<Pass> alive::createConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}
std::unique_ptr<Pass> alive::createDCEPass() {
  return std::make_unique<DCEPass>();
}
std::unique_ptr<Pass> alive::createReassociatePass() {
  return std::make_unique<ReassociatePass>();
}
std::unique_ptr<Pass> alive::createSimplifyCFGPass() {
  return std::make_unique<SimplifyCFGPass>();
}
