//===- bench/bench_tv.cpp - Validator scaling (the worst-case story) --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Characterizes the Alive2-substitute: refinement-check latency versus
/// bit width and function size, SAT-solver statistics, and the symbolic /
/// concrete path split. This is the substrate behind the paper's worst-
/// case observation ("a file that caused Alive2 to spend a large amount
/// of time doing SMT solving" gains almost nothing from the in-process
/// design).
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "support/Timer.h"
#include "tv/RefinementChecker.h"

#include <cstdio>
#include <string>

using namespace alive;

namespace {

/// Builds a check pair: a W-bit chain of Length arithmetic ops, where the
/// target swaps every commutative operation's operands. Equivalent, but
/// structurally distinct — the solver must genuinely prove it (hash-consing
/// would discharge an identical copy for free).
std::string chainIR(unsigned Width, unsigned Length, bool WithMul) {
  std::string W = std::to_string(Width);
  auto build = [&](const char *Name, bool Swapped) {
    std::string S = "define i" + W + " @" + Name + "(i" + W + " %x, i" + W +
                    " %y) {\n";
    std::string Prev = "%x";
    for (unsigned I = 0; I != Length; ++I) {
      std::string V = "%v" + std::to_string(I);
      const char *Op = I % 3 == 0 ? "add" : I % 3 == 1 ? "xor" : "sub";
      bool Commutative = I % 3 != 2;
      if (WithMul && I % 5 == 4) {
        Op = "mul";
        Commutative = true;
      }
      std::string L = Prev, R = "%y";
      if (Swapped && Commutative)
        std::swap(L, R);
      S += "  " + V + " = " + std::string(Op) + " i" + W + " " + L + ", " +
           R + "\n";
      Prev = V;
    }
    S += "  ret i" + W + " " + Prev + "\n}\n";
    return S;
  };
  return build("src", false) + "\n" + build("tgt", true);
}

void checkAndReport(const std::string &Label, const std::string &IR) {
  std::string Err;
  auto M = parseModule(IR, Err);
  if (!M) {
    std::printf("%-26s parse error: %s\n", Label.c_str(), Err.c_str());
    return;
  }
  TVOptions Opts;
  Opts.SolverConflictBudget = 50000; // bound each row (Alive2 timeout analog)
  Opts.ConcreteTrials = 16;
  Timer T;
  TVResult R =
      checkRefinement(*M->getFunction("src"), *M->getFunction("tgt"), Opts);
  double Ms = T.seconds() * 1e3;
  std::printf("%-26s %-13s %9.2f ms  conflicts=%-8llu props=%-10llu %s\n",
              Label.c_str(), tvVerdictName(R.Verdict), Ms,
              (unsigned long long)R.SolverStats.Conflicts,
              (unsigned long long)R.SolverStats.Propagations,
              R.UsedConcretePath ? "[concrete path]" : "[symbolic path]");
}

} // namespace

int main() {
  std::printf("=== Refinement-check scaling (Alive2 substitute) ===\n\n");

  std::printf("-- latency vs bit width (10-op linear chain) --\n");
  for (unsigned W : {4, 8, 16, 32})
    checkAndReport("i" + std::to_string(W) + " chain",
                   chainIR(W, 10, /*WithMul=*/false));

  std::printf("\n-- latency vs function size (i16) --\n");
  for (unsigned L : {4, 16, 48})
    checkAndReport(std::to_string(L) + "-op chain",
                   chainIR(16, L, /*WithMul=*/false));

  std::printf("\n-- multiplication makes SAT hard (the worst-case story) --\n");
  for (unsigned W : {4, 6, 8})
    checkAndReport("i" + std::to_string(W) + " with mul",
                   chainIR(W, 10, /*WithMul=*/true));

  std::printf("\n-- memory functions take the bounded concrete path --\n");
  checkAndReport("store/load roundtrip", R"(
define i32 @src(i32 %x) {
  %p = alloca i32, align 4
  store i32 %x, ptr %p, align 4
  %v = load i32, ptr %p, align 4
  ret i32 %v
}
define i32 @tgt(i32 %x) {
  ret i32 %x
}
)");
  checkAndReport("i8 loop (exhaustive)", R"(
define i8 @src(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i8 [ 0, %entry ], [ %accnext, %body ]
  %done = icmp uge i8 %i, %n
  br i1 %done, label %exit, label %body
body:
  %accnext = add i8 %acc, %i
  %inext = add i8 %i, 1
  br label %head
exit:
  ret i8 %acc
}
define i8 @tgt(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i8 [ 0, %entry ], [ %accnext, %body ]
  %done = icmp uge i8 %i, %n
  br i1 %done, label %exit, label %body
body:
  %accnext = add i8 %acc, %i
  %inext = add i8 %i, 1
  br label %head
exit:
  ret i8 %acc
}
)");

  std::printf("\n-- counterexample extraction --\n");
  checkAndReport("seeded miscompile", R"(
define i32 @src(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}
define i32 @tgt(i32 %x) {
  %a = add nsw i32 %x, 1
  ret i32 %a
}
)");
  return 0;
}
