//===- bench/bench_overheads.cpp - Figure 2 overhead anatomy ---------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies each overhead source that Figure 2 bolds in the discrete
/// workflow — process creation/destruction, file write/read, parsing,
/// printing — and compares their sum against the cost of one complete
/// in-process mutate-optimize-verify iteration. This is the experiment
/// behind the paper's design argument: "alive-mutate runs in the same
/// process ... allowing the mutate-optimize-verify loop to amortize away
/// almost all sources of overhead".
///
//===----------------------------------------------------------------------===//

#include "core/FuzzerLoop.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "support/Timer.h"

#include <cstdio>
#include <functional>
#include <fstream>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

using namespace alive;

namespace {

double timeIt(unsigned Iters, const std::function<void()> &Body) {
  Timer T;
  for (unsigned I = 0; I != Iters; ++I)
    Body();
  return T.seconds() / Iters * 1e6; // microseconds per op
}

} // namespace

int main() {
  const std::string IR = paperListingSeeds()[1]; // @test9 and friends, <2KB
  const std::string TmpPath = "/tmp/amr-overhead.ll";
  const unsigned N = 200;

  std::printf("=== Overhead anatomy of the discrete workflow (Figure 2) ===\n");
  std::printf("measured on a %zu-byte IR file, %u reps each\n\n", IR.size(),
              N);

  // Process creation + destruction (fork + exec of /bin/true + wait).
  double ProcessUs = timeIt(N, [] {
    fflush(stdout);
    pid_t Pid = fork();
    if (Pid == 0) {
      execl("/bin/true", "true", (char *)nullptr);
      _exit(127);
    }
    int St;
    waitpid(Pid, &St, 0);
  });

  // File write + read of the IR text.
  double FileUs = timeIt(N, [&] {
    {
      std::ofstream Out(TmpPath);
      Out << IR;
    }
    std::ifstream In(TmpPath);
    std::stringstream SS;
    SS << In.rdbuf();
    volatile size_t Sink = SS.str().size();
    (void)Sink;
  });

  // Parsing.
  double ParseUs = timeIt(N, [&] {
    std::string Err;
    auto M = parseModule(IR, Err);
  });

  // Printing.
  std::string Err;
  auto Parsed = parseModule(IR, Err);
  double PrintUs = timeIt(N, [&] {
    volatile size_t Sink = printModule(*Parsed).size();
    (void)Sink;
  });

  // In-process alternative to parse+print: cloning the in-memory IR.
  double CloneUs = timeIt(N, [&] { auto C = cloneModule(*Parsed); });

  // One full in-process iteration (mutate + optimize + verify).
  FuzzOptions Opts;
  Opts.TV.ConcreteTrials = 16;
  Opts.TV.SolverConflictBudget = 4000;
  FuzzerLoop Fuzzer(Opts);
  auto M2 = parseModule(IR, Err);
  Fuzzer.loadModule(std::move(M2));
  double IterationUs = timeIt(N, [&, Seed = 0ull]() mutable {
    Fuzzer.runIteration(++Seed);
  });

  std::printf("%-46s %12.1f us\n",
              "process creation + destruction (per process)", ProcessUs);
  std::printf("%-46s %12.1f us\n", "  x3 processes per discrete iteration",
              3 * ProcessUs);
  std::printf("%-46s %12.1f us\n", "file write + read", FileUs);
  std::printf("%-46s %12.1f us\n", "parse IR text", ParseUs);
  std::printf("%-46s %12.1f us\n", "print IR text", PrintUs);
  std::printf("%-46s %12.1f us\n", "clone in-memory IR (in-process substitute)",
              CloneUs);
  std::printf("%-46s %12.1f us\n",
              "ONE FULL in-process iteration (mut+opt+tv)", IterationUs);

  // The discrete pipeline pays, per iteration: 3 process round-trips,
  // ~4 file transfers, ~5 parses (every tool re-parses; alive-tv twice)
  // and ~2 prints.
  double DiscreteOverheadUs =
      3 * ProcessUs + 4 * FileUs + 5 * ParseUs + 2 * PrintUs;
  std::printf("\ndiscrete-pipeline overhead per iteration: %.1f us\n",
              DiscreteOverheadUs);
  std::printf("overhead / useful work ratio: %.1fx\n",
              DiscreteOverheadUs / IterationUs);
  std::printf("=> the overheads Figure 2 bolds dominate the real work on "
              "small unit tests,\n   which is why the in-process design "
              "wins (paper: ~12x average).\n");
  return 0;
}
