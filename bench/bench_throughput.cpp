//===- bench/bench_throughput.cpp - The §V-B throughput experiment ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's §V-B throughput experiment. For each corpus
/// file (<2KB, InstCombine-unit-test-shaped) it performs the same amount
/// of mutation testing two ways:
///
///   1. alive-mutate (in-process): the single-process
///      mutate-optimize-verify loop;
///   2. discrete tools: a loop that, per mutant, spawns amut-mutate,
///      amut-opt and amut-tv as separate UNIX processes communicating
///      through real files — the Figure 2 baseline with its process
///      creation/destruction, file I/O, parsing and printing overheads.
///
/// Both sides are driven by the same PRNG seeds, so "the actual work
/// performed under both conditions is exactly the same". Output ends in
/// the artifact's Listing-20 format.
///
/// Environment knobs: AMR_THROUGHPUT_FILES (default 24; paper used 194),
/// AMR_THROUGHPUT_COUNT (mutants per file, default 40; paper used 1000)
/// and AMR_THROUGHPUT_JOBS (in-process worker threads, default 1 — the
/// discrete baseline is inherently one process chain at a time, so extra
/// workers widen the in-process advantage on multi-core hosts).
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace alive;

namespace {

std::string ToolDir;

/// Spawns Tool with Args; waits; returns exit status (-1 on spawn error).
int runTool(const std::string &Tool, const std::vector<std::string> &Args) {
  // Flush before forking so the child does not inherit (and re-emit) the
  // parent's buffered output when it redirects its streams.
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t Pid = fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    std::string Path = ToolDir + "/" + Tool;
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(Path.c_str()));
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    // Silence the children: their stdout/stderr is not the experiment.
    freopen("/dev/null", "w", stdout);
    freopen("/dev/null", "w", stderr);
    execv(Path.c_str(), Argv.data());
    _exit(127);
  }
  int Status = 0;
  waitpid(Pid, &Status, 0);
  return Status;
}

unsigned envOr(const char *Name, unsigned Default) {
  const char *V = std::getenv(Name);
  return V ? (unsigned)std::strtoul(V, nullptr, 10) : Default;
}

} // namespace

int main(int argc, char **argv) {
  // Locate the sibling tools relative to this binary.
  std::string Self = argv[0];
  size_t Slash = Self.rfind('/');
  std::string BenchDir = Slash == std::string::npos ? "." : Self.substr(0, Slash);
  ToolDir = BenchDir + "/../src/tools";

  const unsigned NumFiles = envOr("AMR_THROUGHPUT_FILES", 24);
  const unsigned Count = envOr("AMR_THROUGHPUT_COUNT", 40);
  const unsigned Jobs = std::max(1u, envOr("AMR_THROUGHPUT_JOBS", 1));
  const std::string Tmp = "/tmp/amr-throughput";
  std::string Cmd = "mkdir -p " + Tmp;
  if (std::system(Cmd.c_str()) != 0)
    return 1;

  std::printf("=== Throughput experiment (paper §V-B) ===\n");
  std::printf("files: %u (paper: 194), mutants per file: %u (paper: 1000), "
              "in-process workers: %u\n\n",
              NumFiles, Count, Jobs);

  // The corpus: generated files under 2KB, InstCombine-test shaped, plus
  // the paper's own listings; files the validator cannot handle would be
  // discarded, mirroring the paper's 200 -> 194.
  std::vector<std::string> Files = generateCorpusFiles(2024, NumFiles);

  struct Row {
    std::string Name;
    double InProcess;
    double Discrete;
    bool Valid;
  };
  std::vector<Row> Rows;
  unsigned Invalid = 0, NotVerified = 0;

  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Name = "test" + std::to_string(FI) + ".ll";
    std::string Path = Tmp + "/" + Name;
    {
      std::ofstream Out(Path);
      Out << Files[FI];
    }

    // --- Condition 1: alive-mutate (in-process). ---
    std::string Err;
    auto M = parseModule(Files[FI], Err);
    if (!M) {
      ++Invalid;
      continue;
    }
    FuzzOptions Opts;
    Opts.Iterations = Count;
    Opts.BaseSeed = 1;
    Opts.TV.ConcreteTrials = 16;
    Opts.TV.SolverConflictBudget = 4000; // matched in the amut-tv calls
    CampaignEngine Fuzzer(Opts, Jobs);
    Timer T1;
    unsigned Testable = Fuzzer.loadModule(std::move(M));
    if (Testable == 0) {
      ++NotVerified; // the paper discarded 6 of 200 this way
      continue;
    }
    Fuzzer.run();
    double InProc = T1.seconds();

    // --- Condition 2: discrete tools with files and processes. ---
    std::string MutPath = Tmp + "/mutant.ll";
    std::string OptPath = Tmp + "/optimized.ll";
    Timer T2;
    for (unsigned I = 0; I != Count; ++I) {
      runTool("amut-mutate",
              {"-seed=" + std::to_string(Opts.BaseSeed + I), Path, MutPath});
      runTool("amut-opt", {"-passes=O2", MutPath, OptPath});
      runTool("amut-tv", {"-budget=4000", "-trials=16", MutPath, OptPath});
    }
    double Discrete = T2.seconds();

    Rows.push_back({Name, InProc, Discrete, true});
    std::printf("%-12s in-process %8.3fs   discrete %8.3fs   speedup %7.2fx\n",
                Name.c_str(), InProc, Discrete, Discrete / InProc);
  }

  // Summary in the shape the paper reports.
  double Sum = 0, Best = 0, Worst = 1e9;
  std::string BestName, WorstName;
  for (const Row &R : Rows) {
    double S = R.Discrete / R.InProcess;
    Sum += S;
    if (S > Best) {
      Best = S;
      BestName = R.Name;
    }
    if (S < Worst) {
      Worst = S;
      WorstName = R.Name;
    }
  }
  double Avg = Rows.empty() ? 0 : Sum / Rows.size();
  std::printf("\naverage speedup: %.2fx  (paper: ~12x)\n", Avg);
  std::printf("best case:       %.2fx on %s (paper: 786x)\n", Best,
              BestName.c_str());
  std::printf("worst case:      %.2fx on %s (paper: 1.01x)\n", Worst,
              WorstName.c_str());

  // Listing 20 output format from the artifact appendix.
  std::printf("\n--- res.txt (Listing 20 format) ---\n");
  std::printf("Total: %zu\n", Rows.size());
  std::printf("Alive-mutate lst:[");
  for (size_t I = 0; I != Rows.size(); ++I)
    std::printf("%s(%g, '%s')", I ? ", " : "", Rows[I].InProcess,
                Rows[I].Name.c_str());
  std::printf("]\n");
  std::printf("Discrete tools lst:[");
  for (size_t I = 0; I != Rows.size(); ++I)
    std::printf("%s(%g, '%s')", I ? ", " : "", Rows[I].Discrete,
                Rows[I].Name.c_str());
  std::printf("]\n");
  std::printf("perf lst:[");
  for (size_t I = 0; I != Rows.size(); ++I)
    std::printf("%s(%g, '%s')", I ? ", " : "",
                Rows[I].Discrete / Rows[I].InProcess, Rows[I].Name.c_str());
  std::printf("]\n");
  std::printf("Avg perf:%g\n", Avg);
  std::printf("Total not-verified:%u\n", NotVerified);
  std::printf("Not-verified files:[]\n");
  std::printf("Total invalid file:%u\n", Invalid);
  std::printf("Invalid files:[]\n");
  return 0;
}
