//===- bench/bench_throughput.cpp - The §V-B throughput experiment ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's §V-B throughput experiment. For each corpus
/// file (<2KB, InstCombine-unit-test-shaped) it performs the same amount
/// of mutation testing three ways:
///
///   1. alive-mutate (in-process): the single-process
///      mutate-optimize-verify loop, with change-tracking skips and the
///      TV verdict cache on (the defaults);
///   2. alive-mutate without memoization (-no-tv-cache
///      -no-skip-unchanged): the same loop re-verifying every function of
///      every mutant — isolates what the skip/cache layer buys;
///   3. discrete tools: a loop that, per mutant, spawns amut-mutate,
///      amut-opt and amut-tv as separate UNIX processes communicating
///      through real files — the Figure 2 baseline with its process
///      creation/destruction, file I/O, parsing and printing overheads.
///
/// All conditions are driven by the same PRNG seeds, so "the actual work
/// performed under both conditions is exactly the same". Output ends in
/// the artifact's Listing-20 format.
///
/// Environment knobs: AMR_THROUGHPUT_FILES (default 24; paper used 194),
/// AMR_THROUGHPUT_COUNT (mutants per file, default 40; paper used 1000),
/// AMR_THROUGHPUT_JOBS (in-process worker threads, default 1 — the
/// discrete baseline is inherently one process chain at a time, so extra
/// workers widen the in-process advantage on multi-core hosts) and
/// AMR_THROUGHPUT_JSON (when set: path of a machine-readable JSON report
/// with the per-file rows and the aggregated skip/cache counters; CI's
/// smoke job diffs its structure against BENCH_baseline.json), and
/// AMR_THROUGHPUT_SHARED (default 1: the memoized condition uses the
/// process-wide canonicalized verdict cache plus the concrete prescreen;
/// 0 reverts to the per-worker text-keyed cache so CI can compare the
/// two hit rates).
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "corpus/Corpus.h"
#include "tv/SharedTVCache.h"
#include "parser/Parser.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace alive;

namespace {

std::string ToolDir;

/// Spawns Tool with Args; waits; returns exit status (-1 on spawn error).
int runTool(const std::string &Tool, const std::vector<std::string> &Args) {
  // Flush before forking so the child does not inherit (and re-emit) the
  // parent's buffered output when it redirects its streams.
  std::fflush(stdout);
  std::fflush(stderr);
  pid_t Pid = fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    std::string Path = ToolDir + "/" + Tool;
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(Path.c_str()));
    for (const std::string &A : Args)
      Argv.push_back(const_cast<char *>(A.c_str()));
    Argv.push_back(nullptr);
    // Silence the children: their stdout/stderr is not the experiment.
    freopen("/dev/null", "w", stdout);
    freopen("/dev/null", "w", stderr);
    execv(Path.c_str(), Argv.data());
    _exit(127);
  }
  int Status = 0;
  waitpid(Pid, &Status, 0);
  return Status;
}

unsigned envOr(const char *Name, unsigned Default) {
  const char *V = std::getenv(Name);
  return V ? (unsigned)std::strtoul(V, nullptr, 10) : Default;
}

} // namespace

int main(int argc, char **argv) {
  // Locate the sibling tools relative to this binary.
  std::string Self = argv[0];
  size_t Slash = Self.rfind('/');
  std::string BenchDir = Slash == std::string::npos ? "." : Self.substr(0, Slash);
  ToolDir = BenchDir + "/../src/tools";

  const unsigned NumFiles = envOr("AMR_THROUGHPUT_FILES", 24);
  const unsigned Count = envOr("AMR_THROUGHPUT_COUNT", 40);
  const unsigned Jobs = std::max(1u, envOr("AMR_THROUGHPUT_JOBS", 1));
  const bool Shared = envOr("AMR_THROUGHPUT_SHARED", 1) != 0;
  const std::string Tmp = "/tmp/amr-throughput";
  std::string Cmd = "mkdir -p " + Tmp;
  if (std::system(Cmd.c_str()) != 0)
    return 1;

  std::printf("=== Throughput experiment (paper §V-B) ===\n");
  std::printf("files: %u (paper: 194), mutants per file: %u (paper: 1000), "
              "in-process workers: %u, tv-cache: %s\n\n",
              NumFiles, Count, Jobs, Shared ? "shared" : "per-worker");

  // The corpus: generated files under 2KB, InstCombine-test shaped, plus
  // the paper's own listings; files the validator cannot handle would be
  // discarded, mirroring the paper's 200 -> 194.
  std::vector<std::string> Files = generateCorpusFiles(2024, NumFiles);

  struct Row {
    std::string Name;
    double InProcess;
    double NoMemo;
    double Discrete;
    /// The file's most expensive TV query (cost attribution of the
    /// memoized condition); HasTop false when nothing was tracked.
    bool HasTop = false;
    QueryCost Top;
  };
  std::vector<Row> Rows;
  FuzzStats Agg; // skip/cache counters of the memoized condition, summed
  unsigned Invalid = 0, NotVerified = 0;

  // One process-wide verdict cache spanning every per-file campaign:
  // generated corpus files share structural patterns, so canonicalized
  // verdicts computed for one file replay for later ones.
  SharedTVCache ProcessCache;

  // Per-file latency distributions, one histogram per condition — the
  // summary below reports their p50/p90/p99.
  StatRegistry Reg;
  Histogram &HInProc = Reg.histogram("bench.in_process.seconds");
  Histogram &HNoMemo = Reg.histogram("bench.no_memo.seconds");
  Histogram &HDiscrete = Reg.histogram("bench.discrete.seconds");

  for (unsigned FI = 0; FI != Files.size(); ++FI) {
    std::string Name = "test" + std::to_string(FI) + ".ll";
    std::string Path = Tmp + "/" + Name;
    {
      std::ofstream Out(Path);
      Out << Files[FI];
    }

    std::string Err;
    auto M = parseModule(Files[FI], Err);
    if (!M) {
      ++Invalid;
      continue;
    }
    FuzzOptions Opts;
    Opts.Iterations = Count;
    Opts.BaseSeed = 1;
    Opts.TV.ConcreteTrials = 16;
    Opts.TV.SolverConflictBudget = 4000; // matched in the amut-tv calls
    if (Shared) {
      Opts.UseSharedTVCache = true;
      Opts.SharedCache = &ProcessCache; // spans all files, not per-engine
      Opts.TV.PrescreenTrials = 4; // cheap concrete race before the solver
    }
    // Cost attribution on the memoized condition: the per-file top query
    // names what dominates that file's verify time in the JSON report.
    // The tracker rides the verify path (a mutex-guarded map update per
    // function); the slight drag lands on the in-process condition only,
    // which can only understate the reported speedups.
    Opts.Profile.Enabled = true;
    Opts.Profile.TopK = 8;
    Opts.Profile.SamplingIntervalMs = 25;

    // --- Condition 1: alive-mutate (in-process), memoization on. ---
    CampaignEngine Fuzzer(Opts, Jobs);
    ScopedTimer T1(&HInProc);
    unsigned Testable = Fuzzer.loadModule(std::move(M));
    if (Testable == 0) {
      T1.cancel(); // keep discarded files out of the latency histogram
      ++NotVerified; // the paper discarded 6 of 200 this way
      continue;
    }
    const FuzzStats &S = Fuzzer.run();
    double InProc = T1.stop();
    Agg.Verified += S.Verified;
    Agg.VerifySkipped += S.VerifySkipped;
    Agg.TVCacheHits += S.TVCacheHits;
    Agg.TVCacheMisses += S.TVCacheMisses;
    Agg.TVCacheEvictions += S.TVCacheEvictions;

    // --- Condition 2: in-process, memoization off (the old loop). ---
    FuzzOptions Bare = Opts;
    Bare.SkipUnchanged = false;
    Bare.TVCacheSize = 0;
    Bare.UseSharedTVCache = false;
    Bare.TV.PrescreenTrials = 0;
    CampaignEngine BareFuzzer(Bare, Jobs);
    auto M2 = parseModule(Files[FI], Err);
    ScopedTimer T1b(&HNoMemo);
    BareFuzzer.loadModule(std::move(M2));
    BareFuzzer.run();
    double NoMemo = T1b.stop();

    // --- Condition 3: discrete tools with files and processes. ---
    std::string MutPath = Tmp + "/mutant.ll";
    std::string OptPath = Tmp + "/optimized.ll";
    ScopedTimer T2(&HDiscrete);
    for (unsigned I = 0; I != Count; ++I) {
      runTool("amut-mutate",
              {"-seed=" + std::to_string(Opts.BaseSeed + I), Path, MutPath});
      runTool("amut-opt", {"-passes=O2", MutPath, OptPath});
      runTool("amut-tv", {"-budget=4000", "-trials=16", MutPath, OptPath});
    }
    double Discrete = T2.stop();

    Row R;
    R.Name = Name;
    R.InProcess = InProc;
    R.NoMemo = NoMemo;
    R.Discrete = Discrete;
    if (const CampaignProfile &P = Fuzzer.profile();
        P.Enabled && !P.TopQueries.empty()) {
      R.HasTop = true;
      R.Top = P.TopQueries.front();
    }
    Rows.push_back(std::move(R));
    std::printf("%-12s in-process %8.3fs   no-memo %8.3fs   discrete %8.3fs"
                "   speedup %7.2fx\n",
                Name.c_str(), InProc, NoMemo, Discrete, Discrete / InProc);
    if (Rows.back().HasTop) {
      const QueryCost &Q = Rows.back().Top;
      std::printf("             top query: %s (%s) cost %llu (%llu dec, "
                  "%llu prop, %llu confl) x%llu\n",
                  Q.Function.c_str(), Q.Verdict.c_str(),
                  (unsigned long long)Q.costUnits(),
                  (unsigned long long)Q.Decisions,
                  (unsigned long long)Q.Propagations,
                  (unsigned long long)Q.Conflicts,
                  (unsigned long long)Q.Count);
    }
  }

  // Summary in the shape the paper reports.
  double Sum = 0, Best = 0, Worst = 1e9;
  std::string BestName, WorstName;
  for (const Row &R : Rows) {
    double S = R.Discrete / R.InProcess;
    Sum += S;
    if (S > Best) {
      Best = S;
      BestName = R.Name;
    }
    if (S < Worst) {
      Worst = S;
      WorstName = R.Name;
    }
  }
  double Avg = Rows.empty() ? 0 : Sum / Rows.size();
  double MemoSum = 0;
  for (const Row &R : Rows)
    MemoSum += R.NoMemo / R.InProcess;
  double MemoAvg = Rows.empty() ? 0 : MemoSum / Rows.size();
  uint64_t Lookups = Agg.TVCacheHits + Agg.TVCacheMisses;
  std::printf("\naverage speedup: %.2fx  (paper: ~12x)\n", Avg);
  std::printf("best case:       %.2fx on %s (paper: 786x)\n", Best,
              BestName.c_str());
  std::printf("worst case:      %.2fx on %s (paper: 1.01x)\n", Worst,
              WorstName.c_str());
  std::printf("memoization:     %.2fx over no-memo in-process; "
              "%llu verified, %llu skipped, cache %llu/%llu hit "
              "(%.1f%%), %llu evicted\n",
              MemoAvg, (unsigned long long)Agg.Verified,
              (unsigned long long)Agg.VerifySkipped,
              (unsigned long long)Agg.TVCacheHits,
              (unsigned long long)Lookups,
              Lookups ? 100.0 * Agg.TVCacheHits / Lookups : 0.0,
              (unsigned long long)Agg.TVCacheEvictions);
  // Each condition reports the same three percentiles as the JSON block
  // below — a summary that omits p90 for two of the three conditions
  // cannot be cross-checked against the machine-readable report.
  std::printf("latency/file:    in-process p50 %.3fs p90 %.3fs p99 %.3fs | "
              "no-memo p50 %.3fs p90 %.3fs p99 %.3fs | "
              "discrete p50 %.3fs p90 %.3fs p99 %.3fs\n",
              HInProc.percentile(0.5), HInProc.percentile(0.9),
              HInProc.percentile(0.99), HNoMemo.percentile(0.5),
              HNoMemo.percentile(0.9), HNoMemo.percentile(0.99),
              HDiscrete.percentile(0.5), HDiscrete.percentile(0.9),
              HDiscrete.percentile(0.99));

  // Listing 20 output format from the artifact appendix.
  std::printf("\n--- res.txt (Listing 20 format) ---\n");
  std::printf("Total: %zu\n", Rows.size());
  std::printf("Alive-mutate lst:[");
  for (size_t I = 0; I != Rows.size(); ++I)
    std::printf("%s(%g, '%s')", I ? ", " : "", Rows[I].InProcess,
                Rows[I].Name.c_str());
  std::printf("]\n");
  std::printf("Discrete tools lst:[");
  for (size_t I = 0; I != Rows.size(); ++I)
    std::printf("%s(%g, '%s')", I ? ", " : "", Rows[I].Discrete,
                Rows[I].Name.c_str());
  std::printf("]\n");
  std::printf("perf lst:[");
  for (size_t I = 0; I != Rows.size(); ++I)
    std::printf("%s(%g, '%s')", I ? ", " : "",
                Rows[I].Discrete / Rows[I].InProcess, Rows[I].Name.c_str());
  std::printf("]\n");
  std::printf("Avg perf:%g\n", Avg);
  std::printf("Total not-verified:%u\n", NotVerified);
  std::printf("Not-verified files:[]\n");
  std::printf("Total invalid file:%u\n", Invalid);
  std::printf("Invalid files:[]\n");

  // Machine-readable report for CI trend tracking (schema mirrored by
  // BENCH_baseline.json; scripts/check_bench_json.py validates it).
  if (const char *JsonPath = std::getenv("AMR_THROUGHPUT_JSON")) {
    std::ofstream J(JsonPath);
    if (!J) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath);
      return 1;
    }
    char Buf[256];
    J << "{\n"
      << "  \"experiment\": \"throughput\",\n"
      << "  \"config\": {\"files\": " << NumFiles << ", \"count\": " << Count
      << ", \"jobs\": " << Jobs << ", \"shared_cache\": "
      << (Shared ? "true" : "false") << "},\n"
      << "  \"rows\": [\n";
    for (size_t I = 0; I != Rows.size(); ++I) {
      const Row &R = Rows[I];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"name\": \"%s\", \"in_process_s\": %.6f, "
                    "\"no_memo_s\": %.6f, \"discrete_s\": %.6f, "
                    "\"speedup_vs_discrete\": %.4f, "
                    "\"speedup_vs_no_memo\": %.4f, ",
                    R.Name.c_str(), R.InProcess, R.NoMemo, R.Discrete,
                    R.Discrete / R.InProcess, R.NoMemo / R.InProcess);
      J << Buf << "\"top_query\": ";
      if (R.HasTop) {
        const QueryCost &Q = R.Top;
        J << "{\"function\": \"" << Q.Function << "\", \"verdict\": \""
          << Q.Verdict << "\", \"cost\": " << Q.costUnits()
          << ", \"decisions\": " << Q.Decisions
          << ", \"propagations\": " << Q.Propagations
          << ", \"conflicts\": " << Q.Conflicts << ", \"count\": " << Q.Count
          << ", \"symbolic\": " << (Q.Symbolic ? "true" : "false") << "}";
      } else {
        J << "null";
      }
      J << "}" << (I + 1 != Rows.size() ? "," : "") << "\n";
    }
    std::snprintf(Buf, sizeof(Buf),
                  "  \"avg_speedup_vs_discrete\": %.4f,\n"
                  "  \"avg_speedup_vs_no_memo\": %.4f,\n",
                  Avg, MemoAvg);
    J << "  ],\n" << Buf;
    auto LatencyJSON = [&](const char *Key, const Histogram &H, bool Last) {
      char LBuf[256];
      std::snprintf(LBuf, sizeof(LBuf),
                    "    \"%s\": {\"count\": %llu, \"p50_s\": %.6f, "
                    "\"p90_s\": %.6f, \"p99_s\": %.6f}%s\n",
                    Key, (unsigned long long)H.count(), H.percentile(0.5),
                    H.percentile(0.9), H.percentile(0.99), Last ? "" : ",");
      J << LBuf;
    };
    J << "  \"latency\": {\n";
    LatencyJSON("in_process", HInProc, false);
    LatencyJSON("no_memo", HNoMemo, false);
    LatencyJSON("discrete", HDiscrete, true);
    J << "  },\n";
    // Cost attribution headline: the slowest in-process file (the p99
    // tail's dominator) and the query its verify time went to.
    {
      const Row *Slowest = nullptr;
      for (const Row &R : Rows)
        if (!Slowest || R.InProcess > Slowest->InProcess)
          Slowest = &R;
      J << "  \"profile\": {\"enabled\": true, \"p99_file\": ";
      if (Slowest) {
        J << "\"" << Slowest->Name << "\", \"dominant_query\": ";
        if (Slowest->HasTop) {
          const QueryCost &Q = Slowest->Top;
          J << "{\"function\": \"" << Q.Function << "\", \"verdict\": \""
            << Q.Verdict << "\", \"cost\": " << Q.costUnits()
            << ", \"decisions\": " << Q.Decisions
            << ", \"propagations\": " << Q.Propagations
            << ", \"conflicts\": " << Q.Conflicts
            << ", \"count\": " << Q.Count << "}";
        } else {
          J << "null";
        }
      } else {
        J << "null, \"dominant_query\": null";
      }
      J << "},\n";
    }
    std::snprintf(Buf, sizeof(Buf), "%.4f",
                  Lookups ? (double)Agg.TVCacheHits / Lookups : 0.0);
    J << "  \"totals\": {\"verified\": " << Agg.Verified
      << ", \"verify_skipped\": " << Agg.VerifySkipped
      << ", \"cache_hits\": " << Agg.TVCacheHits
      << ", \"cache_misses\": " << Agg.TVCacheMisses
      << ", \"cache_evictions\": " << Agg.TVCacheEvictions
      << ", \"cache_hit_rate\": " << Buf << ", \"shared_cache\": "
      << (Shared ? "true" : "false") << ", \"not_verified\": "
      << NotVerified << ", \"invalid\": " << Invalid << "}\n"
      << "}\n";
    std::printf("\nJSON report written to %s\n", JsonPath);
  }
  return 0;
}
