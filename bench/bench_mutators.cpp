//===- bench/bench_mutators.cpp - Per-operator mutation throughput ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures every §IV mutation family: applicability rate on the corpus,
/// mutants generated per second, and the validity rate (which the paper
/// claims is 100%). Also measures the §III-B two-level preprocessing cache
/// as an ablation: mutation throughput with the precomputed original info
/// versus recomputing dominance from scratch for every query batch.
///
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "analysis/Verifier.h"
#include "core/FunctionInfo.h"
#include "core/Mutator.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"
#include "support/Timer.h"

#include <cstdio>

using namespace alive;

int main() {
  std::vector<std::string> Files = generateCorpusFiles(11, 10);
  for (const std::string &S : paperListingSeeds())
    Files.push_back(S);

  std::printf("=== Mutation operator throughput (paper §IV) ===\n\n");
  std::printf("%-14s %10s %12s %10s\n", "operator", "applied", "mutants/s",
              "valid");
  std::printf("---------------------------------------------------\n");

  const unsigned Rounds = 300;
  for (unsigned K = 0; K != (unsigned)MutationKind::NumKinds; ++K) {
    auto Kind = (MutationKind)K;
    uint64_t Applied = 0, Valid = 0;
    Timer T;
    for (const std::string &Src : Files) {
      std::string Err;
      auto Master = parseModule(Src, Err);
      if (!Master)
        continue;
      std::vector<
          std::pair<std::string, std::unique_ptr<OriginalFunctionInfo>>>
          Infos;
      for (Function *F : Master->functions())
        if (!F->isDeclaration() && !F->isIntrinsic())
          Infos.push_back(
              {F->getName(), std::make_unique<OriginalFunctionInfo>(*F)});
      MutationOptions MOpts;
      for (unsigned R = 0; R != Rounds; ++R) {
        auto Mutant = cloneModule(*Master);
        RandomGenerator RNG(R * 17 + K);
        Mutator Mut(RNG, MOpts);
        bool Any = false;
        for (auto &[Name, Info] : Infos) {
          MutantInfo MI(*Mutant->getFunction(Name), *Info);
          Any |= Mut.apply(Kind, MI);
        }
        if (!Any)
          continue;
        ++Applied;
        std::vector<std::string> Errors;
        Valid += verifyModule(*Mutant, Errors);
      }
    }
    double Secs = T.seconds();
    std::printf("%-14s %10llu %12.0f %9.1f%%\n", mutationKindName(Kind),
                (unsigned long long)Applied, Applied / Secs,
                Applied ? 100.0 * Valid / Applied : 0.0);
  }

  // Ablation: the §III-B precomputed-info design vs naive recomputation.
  // Uses a large ladder CFG (the paper preprocesses exactly because real
  // unit tests can be big): 40 blocks x 8 instructions, where recomputing
  // the dominance matrix and shuffle ranges per mutant is visibly costly.
  std::printf("\n=== Ablation: two-level info cache (paper §III-B) ===\n");
  std::string Big = "define i32 @big(i32 %x, i32 %y, i1 %c) {\nentry:\n"
                    "  br label %b0\n";
  const unsigned Blocks = 40;
  for (unsigned B = 0; B != Blocks; ++B) {
    std::string Bs = std::to_string(B);
    Big += "b" + Bs + ":\n";
    std::string Prev = B == 0 ? "%x" : "%v" + std::to_string(B - 1) + "_7";
    for (unsigned I = 0; I != 8; ++I) {
      std::string V = "%v" + Bs + "_" + std::to_string(I);
      const char *Op = I % 2 ? "add" : "xor";
      Big += "  " + V + " = " + Op + " i32 " + Prev + ", %y\n";
      Prev = V;
    }
    if (B + 1 != Blocks)
      Big += "  br i1 %c, label %b" + std::to_string(B + 1) + ", label %bexit\n";
    else
      Big += "  br label %bexit\n";
  }
  Big += "bexit:\n  ret i32 %v0_7\n}\n";

  std::string Err;
  auto Master = parseModule(Big, Err);
  if (!Master) {
    std::fprintf(stderr, "internal: %s\n", Err.c_str());
    return 1;
  }
  Function *F0 = Master->getFunction("big");
  OriginalFunctionInfo Info(*F0);
  MutationOptions MOpts;
  const unsigned N = 2000;

  Timer TCached;
  for (unsigned I = 0; I != N; ++I) {
    auto Mutant = cloneModule(*Master);
    RandomGenerator RNG(I);
    Mutator Mut(RNG, MOpts);
    MutantInfo MI(*Mutant->getFunction(F0->getName()), Info);
    Mut.mutateFunction(MI);
  }
  double Cached = TCached.seconds();

  Timer TNaive;
  for (unsigned I = 0; I != N; ++I) {
    auto Mutant = cloneModule(*Master);
    // Naive variant: recompute the full preprocessing (dominance matrix,
    // constant scan, shuffle ranges) for every mutant.
    OriginalFunctionInfo Fresh(*Mutant->getFunction(F0->getName()));
    RandomGenerator RNG(I);
    Mutator Mut(RNG, MOpts);
    MutantInfo MI(*Mutant->getFunction(F0->getName()), Fresh);
    Mut.mutateFunction(MI);
  }
  double Naive = TNaive.seconds();

  std::printf("precomputed original info: %8.0f mutants/s\n", N / Cached);
  std::printf("recompute per mutant:      %8.0f mutants/s\n", N / Naive);
  std::printf("cache speedup:             %8.2fx\n", Naive / Cached);
  return 0;
}
