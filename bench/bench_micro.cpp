//===- bench/bench_micro.cpp - google-benchmark microbenchmarks ------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the hot primitives of the fuzzing
/// loop: module cloning (the in-process substitute for parse/print),
/// parsing, printing, one mutation round, single-pass optimization, and
/// one interpreter execution. These are the quantities the Figure 2
/// overhead argument is made of.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "core/FunctionInfo.h"
#include "core/Mutator.h"
#include "corpus/Corpus.h"
#include "ir/Interpreter.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "smt/BitBlaster.h"

#include <benchmark/benchmark.h>

using namespace alive;

namespace {

const std::string &testIR() {
  static const std::string IR = paperListingSeeds()[1]; // @test9 module
  return IR;
}

std::unique_ptr<Module> parsedModule() {
  std::string Err;
  auto M = parseModule(testIR(), Err);
  assert(M);
  return M;
}

void BM_ParseModule(benchmark::State &State) {
  for (auto _ : State) {
    std::string Err;
    auto M = parseModule(testIR(), Err);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_ParseModule);

void BM_PrintModule(benchmark::State &State) {
  auto M = parsedModule();
  for (auto _ : State) {
    std::string S = printModule(*M);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_PrintModule);

void BM_CloneModule(benchmark::State &State) {
  auto M = parsedModule();
  for (auto _ : State) {
    auto C = cloneModule(*M);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_CloneModule);

void BM_VerifyModule(benchmark::State &State) {
  auto M = parsedModule();
  for (auto _ : State) {
    std::vector<std::string> Errors;
    bool Ok = verifyModule(*M, Errors);
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(BM_VerifyModule);

void BM_Preprocess(benchmark::State &State) {
  auto M = parsedModule();
  Function *F = M->getFunction("test9");
  for (auto _ : State) {
    OriginalFunctionInfo Info(*F);
    benchmark::DoNotOptimize(&Info);
  }
}
BENCHMARK(BM_Preprocess);

void BM_MutateRound(benchmark::State &State) {
  auto M = parsedModule();
  Function *F = M->getFunction("test9");
  OriginalFunctionInfo Info(*F);
  MutationOptions Opts;
  uint64_t Seed = 0;
  for (auto _ : State) {
    auto Mutant = cloneModule(*M);
    RandomGenerator RNG(++Seed);
    Mutator Mut(RNG, Opts);
    MutantInfo MI(*Mutant->getFunction("test9"), Info);
    auto Applied = Mut.mutateFunction(MI);
    benchmark::DoNotOptimize(Applied);
  }
}
BENCHMARK(BM_MutateRound);

void BM_OptimizeO2(benchmark::State &State) {
  auto M = parsedModule();
  for (auto _ : State) {
    auto C = cloneModule(*M);
    PassManager PM;
    std::string Err;
    buildPipeline("O2", PM, Err);
    PM.runToFixpoint(*C);
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_OptimizeO2);

void BM_InterpreterRun(benchmark::State &State) {
  std::string Err;
  auto M = parseModule(R"(
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = mul i32 %a, 3
  %c = icmp slt i32 %b, %y
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}
)",
                       Err);
  Function *F = M->getFunction("f");
  ExecOptions Opts;
  for (auto _ : State) {
    Memory Mem;
    Interpreter I(Mem, Opts);
    ExecResult R = I.run(*F, {ConcVal::scalar(APInt(32, 7)),
                              ConcVal::scalar(APInt(32, 9))});
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_InterpreterRun);

void BM_SatEquivalenceQuery(benchmark::State &State) {
  for (auto _ : State) {
    TermBuilder B;
    TermRef X = B.mkVar(16, "x");
    SatSolver S;
    BitBlaster BB(S);
    // Prove (x*2 == x+x): UNSAT query.
    BB.assertTrue(B.mkNe(B.mkMul(X, B.mkConst(16, 2)), B.mkAdd(X, X)));
    auto R = S.solve();
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SatEquivalenceQuery);

void BM_APIntMul64(benchmark::State &State) {
  APInt A(64, 0x123456789ABCDEFULL), Bv(64, 0xFEDCBA987654321ULL);
  for (auto _ : State) {
    APInt C = A * Bv;
    benchmark::DoNotOptimize(C);
  }
}
BENCHMARK(BM_APIntMul64);

} // namespace

BENCHMARK_MAIN();
