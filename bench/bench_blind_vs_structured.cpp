//===- bench/bench_blind_vs_structured.cpp - The §II Radamsa study ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's §II preliminary study: a structure-blind byte
/// mutator (the Radamsa stand-in) against alive-mutate's structured
/// mutation engine, over the same corpus. The paper's observations:
/// "the vast majority of mutated LLVM IR files were invalid", the loadable
/// ones were "almost all boring", and the structured mutator "can create
/// valid LLVM IR 100% of the time".
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "core/BlindMutator.h"
#include "core/FunctionInfo.h"
#include "core/Mutator.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <cstdio>

using namespace alive;

int main() {
  const unsigned MutantsPerFile = 200;
  std::vector<std::string> Files = generateCorpusFiles(7, 12);

  std::printf("=== Structure-blind vs structured mutation (paper §II) ===\n");
  std::printf("corpus: %zu files, %u mutants per file per condition\n\n",
              Files.size(), MutantsPerFile);

  // Condition 1: blind byte mutation.
  uint64_t ParseFail = 0, VerifyFail = 0, Boring = 0, Interesting = 0;
  RandomGenerator BlindRNG(1);
  for (const std::string &Original : Files) {
    for (unsigned I = 0; I != MutantsPerFile; ++I) {
      std::string Mut = blindMutate(Original, BlindRNG);
      switch (classifyBlindMutant(Original, Mut)) {
      case BlindOutcome::ParseError:
        ++ParseFail;
        break;
      case BlindOutcome::Invalid:
        ++VerifyFail;
        break;
      case BlindOutcome::Boring:
        ++Boring;
        break;
      case BlindOutcome::Interesting:
        ++Interesting;
        break;
      }
    }
  }
  uint64_t Total = (uint64_t)Files.size() * MutantsPerFile;

  // Condition 2: structured mutation.
  uint64_t SValid = 0, SInvalid = 0, SChanged = 0;
  for (const std::string &Original : Files) {
    std::string Err;
    auto Master = parseModule(Original, Err);
    if (!Master)
      continue;
    std::string BaseText = printModule(*Master);
    std::vector<std::pair<std::string, std::unique_ptr<OriginalFunctionInfo>>>
        Infos;
    for (Function *F : Master->functions())
      if (!F->isDeclaration() && !F->isIntrinsic())
        Infos.push_back(
            {F->getName(), std::make_unique<OriginalFunctionInfo>(*F)});
    MutationOptions MOpts;
    for (unsigned I = 0; I != MutantsPerFile; ++I) {
      auto Mutant = cloneModule(*Master);
      RandomGenerator RNG(1000 + I);
      Mutator Mut(RNG, MOpts);
      for (auto &[Name, Info] : Infos) {
        MutantInfo MI(*Mutant->getFunction(Name), *Info);
        Mut.mutateFunction(MI);
      }
      std::vector<std::string> Errors;
      if (verifyModule(*Mutant, Errors)) {
        ++SValid;
        SChanged += printModule(*Mutant) != BaseText;
      } else {
        ++SInvalid;
      }
    }
  }

  auto pct = [&](uint64_t N, uint64_t D) { return 100.0 * N / D; };
  std::printf("structure-blind (Radamsa-style) mutants:\n");
  std::printf("  parse failure:        %6llu  (%5.1f%%)\n",
              (unsigned long long)ParseFail, pct(ParseFail, Total));
  std::printf("  verifier failure:     %6llu  (%5.1f%%)\n",
              (unsigned long long)VerifyFail, pct(VerifyFail, Total));
  std::printf("  boring (rename-only): %6llu  (%5.1f%%)\n",
              (unsigned long long)Boring, pct(Boring, Total));
  std::printf("  interesting:          %6llu  (%5.1f%%)\n",
              (unsigned long long)Interesting, pct(Interesting, Total));
  std::printf("\nstructured (alive-mutate) mutants:\n");
  std::printf("  valid:                %6llu  (%5.1f%%)   [paper: 100%%]\n",
              (unsigned long long)SValid, pct(SValid, Total));
  std::printf("  invalid:              %6llu  (%5.1f%%)\n",
              (unsigned long long)SInvalid, pct(SInvalid, Total));
  std::printf("  semantically changed: %6llu  (%5.1f%%)\n",
              (unsigned long long)SChanged, pct(SChanged, Total));
  std::printf("\n=> blind mutation wastes most CPU time on unloadable or "
              "boring inputs;\n   structured mutation is valid every time "
              "(paper §II).\n");
  return SInvalid == 0 ? 0 : 1;
}
