//===- bench/bench_paper_listings.cpp - Figure 1 / Listings replay ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the paper's concrete bug exhibits end-to-end through the seeded
/// buggy passes and the translation validator:
///
///   Figure 1 (Listings 1-3):   the clamp canonicalization miscompile
///   Listing 15 (PR 52884):     the nuw+nsw smax crash
///   Listing 16 (PR 64687):     the non-power-of-two alignment crash
///   Listing 17 (PR 59836):     the (zext a)*(zext b) precondition bug
///   Listing 18 (PR 55129):     the zero-width bitfield extract
///   Listing 19 (PR 55342):     the promoted-constant compare
///
/// Each row shows the validator's verdict (and counterexample) with the
/// seeded defect enabled, and that the fixed compiler is clean.
///
//===----------------------------------------------------------------------===//

#include "opt/BugInjection.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tv/RefinementChecker.h"

#include <cstdio>

using namespace alive;

namespace {

struct Exhibit {
  const char *Title;
  BugId Bug;
  const char *Passes;
  const char *IR; // function must be named @f
};

void runExhibit(const Exhibit &E) {
  std::printf("--- %s [PR%s] ---\n", E.Title, bugInfo(E.Bug).IssueId);

  for (int Buggy = 1; Buggy >= 0; --Buggy) {
    BugInjectionContext Bugs;
    if (Buggy)
      Bugs.enable(E.Bug);

    std::string Err;
    auto M = parseModule(E.IR, Err);
    if (!M) {
      std::printf("  parse error: %s\n", Err.c_str());
      return;
    }
    auto Original = cloneModule(*M);
    PassManager PM;
    PM.setBugContext(&Bugs);
    buildPipeline(E.Passes, PM, Err);
    bool Crashed = false;
    std::string CrashWhat;
    try {
      PM.runToFixpoint(*M);
    } catch (const OptimizerCrash &C) {
      Crashed = true;
      CrashWhat = C.What;
    }

    std::printf("  %-18s", Buggy ? "buggy compiler:" : "fixed compiler:");
    if (Crashed) {
      std::printf(" CRASH (%s)\n", CrashWhat.c_str());
      continue;
    }
    TVResult R = checkRefinement(*Original->getFunction("f"),
                                 *M->getFunction("f"));
    std::printf(" %s%s%s\n", tvVerdictName(R.Verdict),
                R.Detail.empty() ? "" : " - ", R.Detail.c_str());
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("=== Replaying the paper's bug exhibits ===\n\n");

  runExhibit({"Figure 1: clamp canonicalization (Listings 1-3)",
              BugId::PR53252, "instcombine",
              R"(define i32 @f(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %1 = xor i1 %t2, true
  %r = select i1 %1, i32 %x, i32 %t1
  ret i32 %r
}
)"});

  runExhibit({"Listing 15: smax of add nuw nsw", BugId::PR52884,
              "instcombine",
              R"(define i8 @f(i8 %x) {
  %1 = add nuw nsw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}
)"});

  runExhibit({"Listing 16: 123-byte alignment", BugId::PR64687,
              "infer-alignment",
              R"(define i8 @f(ptr dereferenceable(246) %p) {
  %v = load i8, ptr %p, align 123
  ret i8 %v
}
)"});

  runExhibit({"Listing 17: (zext a)*(zext b) precondition", BugId::PR59836,
              "instcombine",
              R"(define i12 @f(i8 %a, i8 %b) {
  %za = zext i8 %a to i12
  %zb = zext i8 %b to i12
  %m = mul i12 %za, %zb
  ret i12 %m
}
)"});

  runExhibit({"Listing 18: zero-width bitfield extract", BugId::PR55129,
              "lowering",
              R"(define i64 @f(i1 %b) {
  %1 = zext i1 %b to i64
  %2 = lshr i64 %1, 1
  ret i64 %2
}
)"});

  runExhibit({"Listing 19: promoted-constant compare", BugId::PR55342,
              "lowering",
              R"(define i32 @f(i8 %v) {
  %1 = sub i8 -66, 0
  %2 = add i8 %1, %v
  %3 = icmp ugt i8 %2, -31
  %4 = select i1 %3, i32 1, i32 0
  ret i32 %4
}
)"});

  return 0;
}
