//===- bench/bench_campaign.cpp - The Table I fuzzing campaign -------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table I: for each of the 33 seeded defects, runs a fuzzing
/// campaign (mutate -> optimize -> verify) over that defect's near-miss
/// seed corpus until the defect is discovered or an iteration cap is hit.
/// The table reports, per bug: the LLVM issue id, the component the seed
/// lives in, miscompilation vs crash, and the number of mutants the
/// campaign needed — demonstrating that every Table I row is reachable
/// through mutation (not through the pristine corpus, which stays green).
///
/// Environment knobs: AMR_CAMPAIGN_MAXITER (default 4000),
/// AMR_CAMPAIGN_JOBS (worker threads per campaign, default 1; the found-at
/// iteration is identical for every worker count) and AMR_CAMPAIGN_NOCACHE
/// (disable change-tracking skips and the TV verdict cache — found-at
/// columns must not move, only the verification-call counts).
/// AMR_CAMPAIGN_FANOUT=<n> runs every campaign batch under the -fanout
/// process supervisor (shard leases, heartbeat deadlines, backoff
/// restarts), and AMR_CAMPAIGN_INJECT_FAULT arms the deterministic fault
/// plane (same grammar as -inject-fault) — together they are CI's chaos
/// matrix: found-at columns must survive injected child kills, and
/// degraded accounting must be exact when a lease is permanently lost.
/// `-stats-json=<file>` (or AMR_CAMPAIGN_STATS_JSON) writes the merged
/// telemetry of every campaign batch as one schema-versioned run report.
///
/// `-feedback-compare` runs the feedback-vs-blind experiment instead of
/// Table I: every defect campaign runs twice under one fixed mutant
/// budget (AMR_CAMPAIGN_COMPARE_BUDGET, default 256; epoch length
/// AMR_CAMPAIGN_COMPARE_EPOCH, default 128) — once blind, once with
/// -feedback scheduling — and the tool reports seeded defects found and
/// bugs-per-10k-mutants per mode. Exit status asserts feedback >= blind.
/// Both runs are seed-deterministic, so the outcome is stable across
/// hosts and worker counts.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/MetricsExporter.h"
#include "core/RunReport.h"
#include "corpus/Corpus.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "support/FaultPlane.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace alive;

namespace {

/// The pass pipeline that exercises a Table I component most directly
/// (the paper likewise ran both -O2 and single passes, §G-1).
std::string pipelineFor(const char *Component) {
  if (std::strcmp(Component, "InstCombine") == 0)
    return "instsimplify,constfold,instcombine,dce";
  if (std::strcmp(Component, "NewGVN") == 0 ||
      std::strcmp(Component, "newGVN") == 0)
    return "gvn";
  if (std::strcmp(Component, "VectorCombine") == 0)
    return "vector-combine";
  if (std::strcmp(Component, "ConstantFolding") == 0)
    return "constfold";
  if (std::strcmp(Component, "InstSimplify") == 0)
    return "instsimplify";
  if (std::strcmp(Component, "AlignmentFromAssumptions") == 0)
    return "infer-alignment";
  if (std::strcmp(Component, "MoveAutoInit") == 0)
    return "move-auto-init";
  if (std::strcmp(Component, "SROA") == 0)
    return "sroa";
  // AArch64 backend, multiple backends, TargetLibraryInfo.
  return "lowering";
}

struct CampaignResult {
  bool Found = false;
  uint64_t Iterations = 0;
  uint64_t SeedOfMutant = 0;
};

/// Verification-effort counters summed across every campaign batch.
FuzzStats TVAgg;

/// Full-stats aggregation for -stats-json: every campaign batch's merged
/// stats, registry and attributed bug records.
FuzzStats StatsAgg;
StatRegistry RegistryAgg;
std::vector<BugRecord> BugsAgg;

/// AMR_CAMPAIGN_FANOUT: supervised child processes per campaign batch
/// (0 = in-process workers, the default).
unsigned GFanout = 0;
/// Degradation ladder aggregation across every batch: any batch that
/// permanently lost a shard lease marks the whole table run degraded,
/// with its exact lost-iteration accounting appended.
bool DegradedAgg = false;
std::vector<std::pair<unsigned, uint64_t>> LostAgg;

/// One metrics server spanning every per-defect campaign (-metrics-port /
/// AMR_CAMPAIGN_METRICS_PORT): each batch's engine is bound for its run
/// and detached before it dies, so /status always reflects the campaign
/// in flight.
std::unique_ptr<MetricsServer> GMetrics;

/// The engine currently running, for the SIGINT/SIGTERM path.
std::atomic<CampaignEngine *> GEngine{nullptr};
volatile std::sig_atomic_t GSignalSeen = 0;
/// First signal: stop the current campaign AND skip the remaining table
/// rows, so the stats report still flushes.
std::atomic<bool> GStopAll{false};

void onTerminateSignal(int) {
  if (GSignalSeen) {
    _exit(130);
  }
  GSignalSeen = 1;
  GStopAll.store(true, std::memory_order_relaxed);
  if (CampaignEngine *E = GEngine.load(std::memory_order_relaxed))
    E->requestStop();
}

/// Scoped engine<->observer binding: metrics rebinding plus the signal
/// target, detached on every exit path before the engine is destroyed.
struct EngineBinding {
  CampaignEngine &E;
  explicit EngineBinding(CampaignEngine &E) : E(E) {
    if (GMetrics) {
      GMetrics->setEngine(&E);
      E.setEventQueue(&GMetrics->events());
    }
    GEngine.store(&E, std::memory_order_relaxed);
  }
  ~EngineBinding() {
    GEngine.store(nullptr, std::memory_order_relaxed);
    if (GMetrics)
      GMetrics->setEngine(nullptr);
  }
};

void aggregateForReport(const CampaignEngine &Engine) {
  const FuzzStats &S = Engine.stats();
  StatsAgg.MutantsGenerated += S.MutantsGenerated;
  StatsAgg.MutationsApplied += S.MutationsApplied;
  StatsAgg.Optimized += S.Optimized;
  StatsAgg.Verified += S.Verified;
  StatsAgg.VerifySkipped += S.VerifySkipped;
  StatsAgg.TVCacheHits += S.TVCacheHits;
  StatsAgg.TVCacheMisses += S.TVCacheMisses;
  StatsAgg.TVCacheEvictions += S.TVCacheEvictions;
  StatsAgg.RefinementFailures += S.RefinementFailures;
  StatsAgg.Crashes += S.Crashes;
  StatsAgg.Inconclusive += S.Inconclusive;
  StatsAgg.FunctionsDropped += S.FunctionsDropped;
  StatsAgg.InvalidMutants += S.InvalidMutants;
  StatsAgg.MutantsSaved += S.MutantsSaved;
  StatsAgg.SaveFailures += S.SaveFailures;
  StatsAgg.MutateSeconds += S.MutateSeconds;
  StatsAgg.OptimizeSeconds += S.OptimizeSeconds;
  StatsAgg.VerifySeconds += S.VerifySeconds;
  StatsAgg.OverheadSeconds += S.OverheadSeconds;
  StatsAgg.WorkerSeconds += S.WorkerSeconds;
  RegistryAgg.merge(Engine.registry());
  if (Engine.degraded()) {
    DegradedAgg = true;
    for (const auto &L : Engine.lostShards())
      LostAgg.push_back(L);
  }
}

CampaignResult runCampaign(const BugInfo &Bug, const char *SeedIR,
                           uint64_t MaxIter, unsigned Jobs, bool NoCache) {
  FuzzOptions Opts;
  Opts.Passes = pipelineFor(Bug.Component);
  Opts.TV.ConcreteTrials = 16;
  Opts.TV.SolverConflictBudget = 30000;
  Opts.Bugs.enable(Bug.Id);
  Opts.Survival.Fanout = GFanout;
  if (NoCache) {
    Opts.SkipUnchanged = false;
    Opts.TVCacheSize = 0;
  }

  CampaignResult R;
  // Sharded batches with geometrically ramping size: small batches keep
  // quickly-found bugs cheap, large ones amortize the per-batch setup.
  // The batch boundaries are fixed (independent of the worker count), so
  // the first qualifying bug (lowest mutant seed) — and therefore the
  // found-at column — is identical for every worker count.
  uint64_t Batch = 32;
  for (uint64_t Start = 0; Start < MaxIter;
       Start += Batch, Batch = std::min<uint64_t>(Batch * 2, 256)) {
    if (GStopAll.load(std::memory_order_relaxed))
      return R;
    Opts.BaseSeed = 1 + Start;
    Opts.Iterations = std::min<uint64_t>(Batch, MaxIter - Start);

    CampaignEngine Engine(Opts, Jobs);
    EngineBinding Binding(Engine);
    std::string Err;
    auto M = parseModule(SeedIR, Err);
    if (!M || Engine.loadModule(std::move(M)) == 0)
      return R;
    const FuzzStats &S = Engine.run();
    TVAgg.Verified += S.Verified;
    TVAgg.VerifySkipped += S.VerifySkipped;
    TVAgg.TVCacheHits += S.TVCacheHits;
    TVAgg.TVCacheMisses += S.TVCacheMisses;
    TVAgg.TVCacheEvictions += S.TVCacheEvictions;
    aggregateForReport(Engine);

    // Bugs arrive in ascending seed order. Crash records identify
    // themselves; a miscompilation found while only this bug is enabled
    // is attributed to it.
    for (const BugRecord &B : Engine.bugs()) {
      if (B.Kind == BugRecord::Crash && B.IssueId != Bug.IssueId)
        continue;
      R.Found = true;
      R.Iterations = B.MutantSeed; // seeds start at 1: seed == iteration
      R.SeedOfMutant = B.MutantSeed;
      BugsAgg.push_back(B);
      return R;
    }
  }
  R.Iterations = MaxIter;
  return R;
}

unsigned CompareEpoch = 128;

/// One full-budget campaign (no batching, no early stop) for the
/// feedback-vs-blind experiment. \returns true when the defect was
/// discovered within the budget.
bool runCompareCampaign(const BugInfo &Bug, const char *SeedIR,
                        uint64_t Budget, unsigned Jobs, bool Feedback) {
  FuzzOptions Opts;
  Opts.Passes = pipelineFor(Bug.Component);
  Opts.TV.ConcreteTrials = 16;
  Opts.TV.SolverConflictBudget = 30000;
  Opts.Bugs.enable(Bug.Id);
  Opts.BaseSeed = 1;
  Opts.Iterations = Budget;
  Opts.Feedback.Enabled = Feedback;
  Opts.Feedback.EpochLength = CompareEpoch;

  CampaignEngine Engine(Opts, Jobs);
  EngineBinding Binding(Engine);
  std::string Err;
  auto M = parseModule(SeedIR, Err);
  if (!M || Engine.loadModule(std::move(M)) == 0)
    return false;
  Engine.run();
  for (const BugRecord &B : Engine.bugs()) {
    if (B.Kind == BugRecord::Crash && B.IssueId != Bug.IssueId)
      continue;
    return true;
  }
  return false;
}

/// The `-feedback-compare` experiment: seeded defects found per fixed
/// mutant budget, blind vs feedback-directed. \returns the process exit
/// status (0 iff feedback found at least as many defects as blind).
int runFeedbackCompare(uint64_t Budget, unsigned Jobs) {
  std::printf("=== Feedback vs blind: seeded defects per fixed budget ===\n");
  std::printf("(each defect: two campaigns of %llu mutants over its "
              "near-miss seed, %u worker(s))\n\n",
              (unsigned long long)Budget, Jobs);
  std::printf("%-8s %-26s %-9s %-9s\n", "Issue", "Component", "blind",
              "feedback");

  unsigned FoundBlind = 0, FoundFeedback = 0, Campaigns = 0;
  for (const BugInfo &Bug : bugTable()) {
    if (GStopAll.load(std::memory_order_relaxed))
      break;
    const char *SeedIR = nullptr;
    for (const NearMissSeed &S : nearMissSeeds())
      if (std::strcmp(S.IssueId, Bug.IssueId) == 0)
        SeedIR = S.Text;
    if (!SeedIR)
      continue;
    ++Campaigns;
    bool Blind = runCompareCampaign(Bug, SeedIR, Budget, Jobs, false);
    bool Feedback = runCompareCampaign(Bug, SeedIR, Budget, Jobs, true);
    FoundBlind += Blind;
    FoundFeedback += Feedback;
    std::printf("%-8s %-26s %-9s %-9s\n", Bug.IssueId, Bug.Component,
                Blind ? "found" : "-", Feedback ? "found" : "-");
  }

  double Mutants = (double)Campaigns * (double)Budget;
  std::printf("\nblind:    %u / %u defects, %.2f bugs per 10k mutants\n",
              FoundBlind, Campaigns, FoundBlind * 10000.0 / Mutants);
  std::printf("feedback: %u / %u defects, %.2f bugs per 10k mutants\n",
              FoundFeedback, Campaigns, FoundFeedback * 10000.0 / Mutants);
  bool Pass = FoundFeedback >= FoundBlind;
  std::printf("feedback >= blind: %s\n", Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string StatsPath;
  if (const char *P = std::getenv("AMR_CAMPAIGN_STATS_JSON"))
    StatsPath = P;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "-stats-json=", 12) == 0)
      StatsPath = Argv[I] + 12;

  // Live observability for long table regenerations: -metrics-port=<p>
  // (or AMR_CAMPAIGN_METRICS_PORT). 0 binds an ephemeral port, printed
  // on stdout.
  {
    std::string PortStr;
    if (const char *P = std::getenv("AMR_CAMPAIGN_METRICS_PORT"))
      PortStr = P;
    for (int I = 1; I < Argc; ++I)
      if (std::strncmp(Argv[I], "-metrics-port=", 14) == 0)
        PortStr = Argv[I] + 14;
    if (!PortStr.empty()) {
      MetricsOptions MO;
      MO.Port = (uint16_t)std::strtoul(PortStr.c_str(), nullptr, 10);
      GMetrics = std::make_unique<MetricsServer>(MO);
      RunReportConfig Echo;
      Echo.Tool = "bench_campaign";
      Echo.Passes = "per-component";
      GMetrics->setConfigEcho(Echo);
      std::string MetricsErr;
      if (!GMetrics->start(MetricsErr)) {
        std::fprintf(stderr, "error: metrics server: %s\n",
                     MetricsErr.c_str());
        return 1;
      }
      std::printf("metrics: listening on http://127.0.0.1:%u\n",
                  (unsigned)GMetrics->port());
      std::fflush(stdout);
    }
  }
  {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = onTerminateSignal;
    sigemptyset(&SA.sa_mask);
    sigaction(SIGINT, &SA, nullptr);
    sigaction(SIGTERM, &SA, nullptr);
  }

  Timer Wall;
  const char *Env = std::getenv("AMR_CAMPAIGN_MAXITER");
  uint64_t MaxIter = Env ? std::strtoull(Env, nullptr, 10) : 4000;
  const char *JobsEnv = std::getenv("AMR_CAMPAIGN_JOBS");
  unsigned Jobs = JobsEnv ? (unsigned)std::strtoul(JobsEnv, nullptr, 10) : 1;
  if (Jobs == 0)
    Jobs = 1;
  bool NoCache = std::getenv("AMR_CAMPAIGN_NOCACHE") != nullptr;
  if (const char *F = std::getenv("AMR_CAMPAIGN_FANOUT"))
    GFanout = (unsigned)std::strtoul(F, nullptr, 10);
  if (const char *F = std::getenv("AMR_CAMPAIGN_INJECT_FAULT")) {
    std::string FaultErr;
    if (!FaultPlane::instance().arm(F, FaultErr)) {
      std::fprintf(stderr, "error: %s\n", FaultErr.c_str());
      return 1;
    }
  }

  bool Compare = false;
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "-feedback-compare") == 0)
      Compare = true;
  if (Compare) {
    const char *BudgetEnv = std::getenv("AMR_CAMPAIGN_COMPARE_BUDGET");
    uint64_t Budget =
        BudgetEnv ? std::strtoull(BudgetEnv, nullptr, 10) : 256;
    if (Budget == 0)
      Budget = 256;
    if (const char *E = std::getenv("AMR_CAMPAIGN_COMPARE_EPOCH"))
      if (unsigned V = (unsigned)std::strtoul(E, nullptr, 10))
        CompareEpoch = V;
    return runFeedbackCompare(Budget, Jobs);
  }

  std::printf("=== Fuzzing campaign: regenerating Table I ===\n");
  char FanoutNote[48] = "";
  if (GFanout)
    std::snprintf(FanoutNote, sizeof(FanoutNote), ", fanout=%u", GFanout);
  std::printf("(each row: one seeded defect, campaign over its near-miss "
              "seed, cap %llu mutants, %u worker(s)%s%s)\n\n",
              (unsigned long long)MaxIter, Jobs,
              NoCache ? ", memoization off" : "", FanoutNote);
  std::printf("%-8s %-26s %-7s %-15s %10s  %s\n", "Issue", "Component",
              "Status", "Type", "found@", "Description");
  std::printf("%.120s\n",
              "---------------------------------------------------------"
              "---------------------------------------------------------");

  unsigned Found = 0, FoundMiscompile = 0, FoundCrash = 0;
  for (const BugInfo &Bug : bugTable()) {
    if (GStopAll.load(std::memory_order_relaxed)) {
      std::printf("(interrupted: remaining rows skipped)\n");
      break;
    }
    const char *SeedIR = nullptr;
    for (const NearMissSeed &S : nearMissSeeds())
      if (std::strcmp(S.IssueId, Bug.IssueId) == 0)
        SeedIR = S.Text;
    CampaignResult R;
    if (SeedIR)
      R = runCampaign(Bug, SeedIR, MaxIter, Jobs, NoCache);

    char FoundBuf[32];
    if (R.Found)
      std::snprintf(FoundBuf, sizeof FoundBuf, "%llu",
                    (unsigned long long)R.Iterations);
    else
      std::snprintf(FoundBuf, sizeof FoundBuf, "> %llu",
                    (unsigned long long)MaxIter);
    std::printf("%-8s %-26s %-7s %-15s %10s  %s\n", Bug.IssueId,
                Bug.Component, Bug.Status,
                Bug.IsCrash ? "crash" : "miscompilation", FoundBuf,
                Bug.Description);
    if (R.Found) {
      ++Found;
      (Bug.IsCrash ? FoundCrash : FoundMiscompile)++;
    }
  }

  uint64_t Lookups = TVAgg.TVCacheHits + TVAgg.TVCacheMisses;
  std::printf("\nfound %u / 33 seeded defects "
              "(%u miscompilations [paper: 19], %u crashes [paper: 14])\n",
              Found, FoundMiscompile, FoundCrash);
  std::printf("verification effort: %llu verified, %llu skipped "
              "(unchanged), cache %llu/%llu hit, %llu evicted\n",
              (unsigned long long)TVAgg.Verified,
              (unsigned long long)TVAgg.VerifySkipped,
              (unsigned long long)TVAgg.TVCacheHits,
              (unsigned long long)Lookups,
              (unsigned long long)TVAgg.TVCacheEvictions);
  if (GFanout)
    std::printf("supervision: %llu restart(s), %llu wedge kill(s), %llu "
                "fork failure(s)%s\n",
                (unsigned long long)RegistryAgg.counterValue(
                    "survive.supervisor.restarts"),
                (unsigned long long)RegistryAgg.counterValue(
                    "survive.supervisor.wedges"),
                (unsigned long long)RegistryAgg.counterValue(
                    "survive.supervisor.fork_failures"),
                DegradedAgg ? " [DEGRADED]" : "");
  if (DegradedAgg) {
    uint64_t LostIters = 0;
    for (const auto &L : LostAgg)
      LostIters += L.second;
    std::printf("degraded: %zu shard lease(s) permanently lost, %llu "
                "iteration(s) never ran\n",
                LostAgg.size(), (unsigned long long)LostIters);
  }
  if (FaultPlane::instance().armed())
    for (const FaultPointCounters &FC : FaultPlane::instance().counters())
      std::printf("fault: %s (%s): %llu trigger(s) in %llu call(s)\n",
                  FC.Point.c_str(), FC.Spec.c_str(),
                  (unsigned long long)FC.Triggers,
                  (unsigned long long)FC.Calls);

  if (!StatsPath.empty()) {
    RunReportConfig RC;
    RC.Tool = "bench_campaign";
    RC.Passes = "per-component";
    RC.Iterations = MaxIter;
    RC.BaseSeed = 1;
    RC.MaxMutationsPerFunction = MutationOptions().MaxMutationsPerFunction;
    RC.Jobs = Jobs;
    RC.WallSeconds = Wall.seconds();
    RC.Degraded = DegradedAgg;
    RC.FanOut = GFanout;
    RC.LostShards = LostAgg;
    std::string ReportErr;
    if (writeRunReportFile(StatsPath, RC, StatsAgg, BugsAgg, RegistryAgg,
                           ReportErr))
      std::printf("stats report written to %s\n", StatsPath.c_str());
    else
      std::fprintf(stderr, "warning: %s\n", ReportErr.c_str());
  }
  return Found == 33 ? 0 : 1;
}
