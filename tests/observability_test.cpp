//===- tests/observability_test.cpp - Live observability plane tests --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the live observability plane: the bounded drop-on-full
/// CampaignEventQueue, SSE frame formatting, Prometheus name derivation,
/// the poll()-based HttpServer (raw-socket round trips, method rejection,
/// SSE broadcast), the MetricsServer endpoints end-to-end against a real
/// campaign, concurrent StatRegistry snapshots under writer load, and the
/// headline invariant: attaching a metrics server to a campaign leaves the
/// deterministic report section byte-identical.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/MetricsExporter.h"
#include "core/Observability.h"
#include "core/RunReport.h"
#include "net/HttpServer.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"

#include <arpa/inet.h>
#include <atomic>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// The same near-miss corpus campaign_test uses: one InstCombine crash
/// (PR52884) and one miscompilation (PR50693) within a few hundred seeds.
const char *TwoBugCorpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

FuzzOptions twoBugOptions(uint64_t Iterations) {
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = Iterations;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  Opts.Bugs.enable(BugId::PR52884);
  Opts.Bugs.enable(BugId::PR50693);
  return Opts;
}

//===----------------------------------------------------------------------===//
// A tiny blocking HTTP client for round-trip tests.
//===----------------------------------------------------------------------===//

int connectLoopback(uint16_t Port) {
  int FD = ::socket(AF_INET, SOCK_STREAM, 0);
  if (FD < 0)
    return -1;
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(FD);
    return -1;
  }
  return FD;
}

bool sendAll(int FD, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(FD, Data.data() + Off, Data.size() - Off);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Reads from \p FD until EOF or \p TimeoutS elapses.
std::string readToEOF(int FD, double TimeoutS = 5.0) {
  std::string Out;
  Timer Deadline;
  char Buf[4096];
  while (Deadline.seconds() < TimeoutS) {
    pollfd P = {FD, POLLIN, 0};
    int R = ::poll(&P, 1, 100);
    if (R < 0)
      break;
    if (R == 0)
      continue;
    ssize_t N = ::read(FD, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  return Out;
}

/// Reads from \p FD until \p Pattern appears in the accumulated stream (or
/// EOF / timeout). For SSE connections that never close on their own.
std::string readUntil(int FD, const std::string &Pattern,
                      double TimeoutS = 10.0) {
  std::string Out;
  Timer Deadline;
  char Buf[4096];
  while (Deadline.seconds() < TimeoutS &&
         Out.find(Pattern) == std::string::npos) {
    pollfd P = {FD, POLLIN, 0};
    int R = ::poll(&P, 1, 100);
    if (R < 0)
      break;
    if (R == 0)
      continue;
    ssize_t N = ::read(FD, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  return Out;
}

/// One-shot request; returns the whole response (headers + body).
std::string httpGet(uint16_t Port, const std::string &Path,
                    const std::string &Method = "GET") {
  int FD = connectLoopback(Port);
  EXPECT_GE(FD, 0);
  if (FD < 0)
    return "";
  std::string Req = Method + " " + Path +
                    " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  EXPECT_TRUE(sendAll(FD, Req));
  std::string Resp = readToEOF(FD);
  ::close(FD);
  return Resp;
}

std::string statusLine(const std::string &Resp) {
  return Resp.substr(0, Resp.find("\r\n"));
}

std::string body(const std::string &Resp) {
  size_t Pos = Resp.find("\r\n\r\n");
  return Pos == std::string::npos ? "" : Resp.substr(Pos + 4);
}

} // namespace

//===----------------------------------------------------------------------===//
// CampaignEventQueue: bounded, drop-on-full, FIFO.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, EventQueuePushDrainPreservesOrder) {
  CampaignEventQueue Q(8);
  for (uint64_t I = 0; I != 3; ++I) {
    CampaignEvent E;
    E.K = CampaignEvent::Kind::BugFound;
    E.Seed = 100 + I;
    E.Shard = static_cast<unsigned>(I);
    E.Detail = "d" + std::to_string(I);
    EXPECT_TRUE(Q.push(std::move(E)));
  }
  EXPECT_EQ(Q.accepted(), 3u);
  EXPECT_EQ(Q.dropped(), 0u);

  std::vector<CampaignEvent> Out;
  EXPECT_EQ(Q.drain(Out), 3u);
  ASSERT_EQ(Out.size(), 3u);
  for (uint64_t I = 0; I != 3; ++I) {
    EXPECT_EQ(Out[I].Seed, 100 + I);
    EXPECT_EQ(Out[I].Detail, "d" + std::to_string(I));
  }
  // Drained: a second drain finds nothing, and drain() appends.
  EXPECT_EQ(Q.drain(Out), 0u);
  EXPECT_EQ(Out.size(), 3u);
}

TEST(ObservabilityTest, EventQueueDropsWhenFullAndCounts) {
  CampaignEventQueue Q(4);
  EXPECT_EQ(Q.capacity(), 4u);
  for (uint64_t I = 0; I != 6; ++I) {
    CampaignEvent E;
    E.Seed = I;
    bool Accepted = Q.push(std::move(E));
    EXPECT_EQ(Accepted, I < 4) << I;
  }
  EXPECT_EQ(Q.accepted(), 4u);
  EXPECT_EQ(Q.dropped(), 2u);

  // The oldest four survive; the overflow was dropped, not overwritten.
  std::vector<CampaignEvent> Out;
  EXPECT_EQ(Q.drain(Out), 4u);
  for (uint64_t I = 0; I != 4; ++I)
    EXPECT_EQ(Out[I].Seed, I);

  // Draining frees capacity again.
  CampaignEvent E;
  E.Seed = 99;
  EXPECT_TRUE(Q.push(std::move(E)));
  EXPECT_EQ(Q.accepted(), 5u);
}

TEST(ObservabilityTest, EventQueueConcurrentProducersLoseNothingUnderCap) {
  // 4 producers x 100 events into a queue big enough for all of them:
  // every event must arrive exactly once (MPSC correctness, not drops).
  CampaignEventQueue Q(512);
  constexpr unsigned Producers = 4, PerProducer = 100;
  std::vector<std::thread> Threads;
  for (unsigned P = 0; P != Producers; ++P)
    Threads.emplace_back([&Q, P] {
      for (unsigned I = 0; I != PerProducer; ++I) {
        CampaignEvent E;
        E.Shard = P;
        E.Seed = I;
        Q.push(std::move(E));
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Q.accepted(), uint64_t(Producers) * PerProducer);
  EXPECT_EQ(Q.dropped(), 0u);
  std::vector<CampaignEvent> Out;
  EXPECT_EQ(Q.drain(Out), size_t(Producers) * PerProducer);
  unsigned Seen[Producers] = {};
  for (const CampaignEvent &E : Out)
    ++Seen[E.Shard];
  for (unsigned P = 0; P != Producers; ++P)
    EXPECT_EQ(Seen[P], PerProducer);
}

TEST(ObservabilityTest, CampaignEventNamesAreKebab) {
  EXPECT_STREQ(campaignEventName(CampaignEvent::Kind::CampaignStart),
               "campaign-start");
  EXPECT_STREQ(campaignEventName(CampaignEvent::Kind::BugFound), "bug-found");
  EXPECT_STREQ(campaignEventName(CampaignEvent::Kind::EpochBarrier),
               "epoch-barrier");
  EXPECT_STREQ(campaignEventName(CampaignEvent::Kind::Checkpoint),
               "checkpoint");
  EXPECT_STREQ(campaignEventName(CampaignEvent::Kind::ShardRestart),
               "shard-restart");
  EXPECT_STREQ(campaignEventName(CampaignEvent::Kind::CampaignEnd),
               "campaign-end");
}

//===----------------------------------------------------------------------===//
// SSE frames and Prometheus naming.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, FormatSSEFrameShape) {
  CampaignEvent E;
  E.K = CampaignEvent::Kind::BugFound;
  E.Seed = 42;
  E.Shard = 3;
  E.Nanos = 7;
  E.Detail = "miscompile @opposite_shifts";
  std::string Frame = formatSSE(9, E);
  // id then event then a single-line JSON data field, blank-line terminated.
  EXPECT_EQ(Frame.rfind("id: 9\n", 0), 0u) << Frame;
  EXPECT_NE(Frame.find("event: bug-found\n"), std::string::npos) << Frame;
  EXPECT_NE(Frame.find("data: {"), std::string::npos) << Frame;
  EXPECT_NE(Frame.find("\"seed\": 42"), std::string::npos) << Frame;
  EXPECT_NE(Frame.find("\"shard\": 3"), std::string::npos) << Frame;
  EXPECT_NE(Frame.find("miscompile @opposite_shifts"), std::string::npos);
  EXPECT_EQ(Frame.substr(Frame.size() - 2), "\n\n");
  // The data line must stay a single line even with hostile detail text —
  // a raw newline would terminate the SSE field early.
  CampaignEvent Evil = E;
  Evil.Detail = "line1\nline2\"quoted\"";
  std::string EvilFrame = formatSSE(10, Evil);
  size_t DataPos = EvilFrame.find("data: ");
  ASSERT_NE(DataPos, std::string::npos);
  std::string DataLine =
      EvilFrame.substr(DataPos, EvilFrame.find('\n', DataPos) - DataPos);
  EXPECT_NE(DataLine.find("\\n"), std::string::npos) << DataLine;
  EXPECT_NE(DataLine.find("\\\"quoted\\\""), std::string::npos) << DataLine;
}

TEST(ObservabilityTest, PrometheusNameIsDeterministicSanitization) {
  EXPECT_EQ(prometheusName("bug.crash"), "bug_crash");
  EXPECT_EQ(prometheusName("mutation.add-inst.applied"),
            "mutation_add_inst_applied");
  EXPECT_EQ(prometheusName("already_fine_123"), "already_fine_123");
  // Leading digit is illegal in Prometheus names; empty must not be empty.
  EXPECT_EQ(prometheusName("2fast"), "_2fast");
  EXPECT_EQ(prometheusName(""), "_");
  // Distinct slugs used by the registry map to distinct metric names for
  // every real slug family (dots vs dashes both become '_', so this is a
  // convention check, not an injectivity proof).
  EXPECT_NE(prometheusName("stage.mutate.seconds"),
            prometheusName("stage.verify.seconds"));
}

//===----------------------------------------------------------------------===//
// Concurrent StatRegistry snapshots under writer load (satellite 3).
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, ConcurrentSnapshotHammerKeepsExactTotals) {
  StatRegistry R;
  constexpr unsigned Writers = 4;
  constexpr uint64_t PerWriter = 50000;
  std::atomic<bool> Go{false}, Done{false};

  std::vector<std::thread> Threads;
  for (unsigned W = 0; W != Writers; ++W)
    Threads.emplace_back([&R, &Go, W] {
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();
      // First iteration creates the slots under the structure lock while
      // snapshots walk the same maps; later iterations are lock-free.
      std::atomic<uint64_t> &Mine =
          R.counter("hammer.t" + std::to_string(W));
      std::atomic<uint64_t> &Shared = R.counter("hammer.shared");
      Histogram &H = R.histogram("hammer.lat");
      for (uint64_t I = 0; I != PerWriter; ++I) {
        ++Mine;
        ++Shared;
        if (I % 64 == 0)
          H.record(1e-6 * double(1 + (I & 1023)));
      }
    });

  // Snapshot continuously while the writers run; every snapshot must be a
  // plausible point-in-time view (monotone shared counter, never above the
  // final total).
  std::thread Snapshotter([&R, &Done] {
    uint64_t Prev = 0;
    while (!Done.load(std::memory_order_acquire)) {
      StatRegistry S = R.snapshot();
      uint64_t Shared = S.counterValue("hammer.shared");
      EXPECT_GE(Shared, Prev);
      EXPECT_LE(Shared, uint64_t(Writers) * PerWriter);
      Prev = Shared;
      // Serialization of a live snapshot must not crash or deadlock.
      std::ostringstream OS;
      S.writeJSON(OS, Volatility::Volatile);
    }
  });

  Go.store(true, std::memory_order_release);
  for (auto &T : Threads)
    T.join();
  Done.store(true, std::memory_order_release);
  Snapshotter.join();

  // After the join the totals are exact — no lost increments despite the
  // concurrent snapshot walks.
  EXPECT_EQ(R.counterValue("hammer.shared"), uint64_t(Writers) * PerWriter);
  for (unsigned W = 0; W != Writers; ++W)
    EXPECT_EQ(R.counterValue("hammer.t" + std::to_string(W)), PerWriter);
  uint64_t ExpectedSamples = uint64_t(Writers) * ((PerWriter + 63) / 64);
  EXPECT_EQ(R.histogram("hammer.lat").count(), ExpectedSamples);
}

TEST(ObservabilityTest, HistogramPercentilesStayOrderedMidUpdate) {
  // A writer records a bimodal distribution while a reader repeatedly
  // copies the histogram and checks the percentile chain. A mid-update
  // copy may see count ahead of the bucket sums; percentile() must still
  // produce ordered, range-clamped estimates (never 0 > p50 > p99 > max).
  Histogram H;
  std::atomic<bool> Stop{false};
  std::thread Writer([&H, &Stop] {
    uint64_t I = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      H.record((I & 7) ? 3e-6 : 0.25);
      ++I;
    }
  });

  Timer T;
  uint64_t Checks = 0;
  while (T.seconds() < 0.3) {
    Histogram Copy(H); // relaxed field-by-field copy of a live histogram
    double P50 = Copy.percentile(0.5), P90 = Copy.percentile(0.9),
           P99 = Copy.percentile(0.99);
    EXPECT_LE(P50, P90);
    EXPECT_LE(P90, P99);
    EXPECT_LE(P99, Copy.max());
    if (Copy.count()) {
      EXPECT_GT(P50, 0.0);
      EXPECT_GE(P50, Copy.min());
    }
    ++Checks;
  }
  Stop.store(true, std::memory_order_release);
  Writer.join();
  EXPECT_GT(Checks, 0u);
  // Quiesced: the invariant count == bucket sum holds exactly.
  uint64_t BucketSum = 0;
  for (unsigned I = 0; I != Histogram::NumBuckets; ++I)
    BucketSum += H.bucketCount(I);
  EXPECT_EQ(BucketSum, H.count());
}

//===----------------------------------------------------------------------===//
// HttpServer: raw-socket round trips.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, HttpServerServesRoutesAndRejectsMethods) {
  HttpServer S;
  S.setHandler([](const HttpRequest &Req) {
    HttpResponse R;
    if (Req.Path == "/ok") {
      R.Body = "hello " + Req.Query;
      return R;
    }
    R.Status = 404;
    R.Body = "nope";
    return R;
  });
  std::string Err;
  ASSERT_TRUE(S.start(0, Err)) << Err;
  ASSERT_NE(S.port(), 0);

  std::string Ok = httpGet(S.port(), "/ok?x=1");
  EXPECT_NE(statusLine(Ok).find("200"), std::string::npos) << Ok;
  EXPECT_EQ(body(Ok), "hello x=1");
  EXPECT_NE(Ok.find("Content-Length:"), std::string::npos);

  std::string Missing = httpGet(S.port(), "/no-such");
  EXPECT_NE(statusLine(Missing).find("404"), std::string::npos) << Missing;

  std::string Post = httpGet(S.port(), "/ok", "POST");
  EXPECT_NE(statusLine(Post).find("405"), std::string::npos) << Post;

  // HEAD gets the same status but an empty body.
  std::string Head = httpGet(S.port(), "/ok", "HEAD");
  EXPECT_NE(statusLine(Head).find("200"), std::string::npos) << Head;
  EXPECT_EQ(body(Head), "");

  S.stop();
  EXPECT_FALSE(S.running());
  S.stop(); // idempotent
}

TEST(ObservabilityTest, HttpServerBroadcastReachesStreamClients) {
  HttpServer S;
  std::atomic<bool> Fire{false};
  std::atomic<bool> Sent{false};
  S.setHandler([](const HttpRequest &Req) {
    HttpResponse R;
    if (Req.Path == "/stream") {
      R.Stream = true;
      R.Body = ": welcome\n\n";
      return R;
    }
    R.Status = 404;
    return R;
  });
  // broadcast() is server-thread-only; the tick is that thread.
  S.setTick([&S, &Fire, &Sent] {
    if (Fire.load(std::memory_order_acquire) &&
        !Sent.exchange(true, std::memory_order_acq_rel))
      S.broadcast("data: ping\n\n");
  });
  std::string Err;
  ASSERT_TRUE(S.start(0, Err)) << Err;

  int FD = connectLoopback(S.port());
  ASSERT_GE(FD, 0);
  ASSERT_TRUE(sendAll(FD, "GET /stream HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string Preamble = readUntil(FD, ": welcome", 5.0);
  EXPECT_NE(Preamble.find("text/event-stream"), std::string::npos) << Preamble;

  Fire.store(true, std::memory_order_release);
  std::string Pushed = readUntil(FD, "data: ping", 5.0);
  EXPECT_NE(Pushed.find("data: ping"), std::string::npos) << Pushed;

  ::close(FD);
  S.stop();
}

//===----------------------------------------------------------------------===//
// MetricsServer endpoints.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, MetricsServerReadinessFollowsEngineBinding) {
  MetricsOptions MO;
  MO.SnapshotInterval = 0.01;
  MetricsServer M(MO);
  std::string Err;
  ASSERT_TRUE(M.start(Err)) << Err;
  ASSERT_NE(M.port(), 0);

  // No engine bound yet: not ready, but alive and serving.
  std::string NotReady = httpGet(M.port(), "/readyz");
  EXPECT_NE(statusLine(NotReady).find("503"), std::string::npos) << NotReady;
  std::string Metrics = httpGet(M.port(), "/metrics");
  EXPECT_NE(body(Metrics).find("alive_up 1"), std::string::npos) << Metrics;
  std::string Index = httpGet(M.port(), "/");
  EXPECT_NE(statusLine(Index).find("200"), std::string::npos);
  std::string Missing = httpGet(M.port(), "/no-such-endpoint");
  EXPECT_NE(statusLine(Missing).find("404"), std::string::npos);

  FuzzOptions Opts = twoBugOptions(10);
  CampaignEngine Engine(Opts, 1);
  M.setEngine(&Engine);
  std::string Ready = httpGet(M.port(), "/readyz");
  EXPECT_NE(statusLine(Ready).find("200"), std::string::npos) << Ready;
  // An idle engine (never run) is healthy: nothing can be stale.
  std::string Health = httpGet(M.port(), "/healthz");
  EXPECT_NE(statusLine(Health).find("200"), std::string::npos) << Health;

  M.setEngine(nullptr);
  M.stop();
  EXPECT_FALSE(M.running());
}

TEST(ObservabilityTest, MetricsServerEndToEndCampaign) {
  FuzzOptions Opts = twoBugOptions(300);
  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));

  MetricsOptions MO;
  MO.SnapshotInterval = 0.005;
  MetricsServer M(MO);
  M.setEngine(&Engine);
  RunReportConfig Echo;
  Echo.Tool = "observability_test";
  Echo.Passes = Opts.Passes;
  Echo.Iterations = Opts.Iterations;
  Echo.BaseSeed = Opts.BaseSeed;
  Echo.Jobs = 2;
  M.setConfigEcho(Echo);
  Engine.setEventQueue(&M.events());
  std::string Err;
  ASSERT_TRUE(M.start(Err)) << Err;

  // Subscribe to /events before the campaign so the bug-found frames land
  // in this connection's stream.
  int SSE = connectLoopback(M.port());
  ASSERT_GE(SSE, 0);
  ASSERT_TRUE(sendAll(SSE, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string Preamble = readUntil(SSE, "text/event-stream", 5.0);
  ASSERT_NE(Preamble.find("text/event-stream"), std::string::npos);

  const FuzzStats &S = Engine.run();
  ASSERT_GT(S.MutantsGenerated, 0u);
  ASSERT_GT(Engine.bugs().size(), 0u);

  // The acceptance criterion: a bug-found event is delivered over SSE.
  std::string Stream = readUntil(SSE, "event: bug-found", 10.0);
  EXPECT_NE(Stream.find("event: campaign-start"), std::string::npos) << Stream;
  EXPECT_NE(Stream.find("event: bug-found"), std::string::npos) << Stream;
  EXPECT_NE(Stream.find("\"seed\":"), std::string::npos);
  ::close(SSE);

  // /metrics exposes the campaign counters under derived names.
  std::string Metrics = body(httpGet(M.port(), "/metrics"));
  EXPECT_NE(Metrics.find("alive_up 1"), std::string::npos);
  EXPECT_NE(Metrics.find("alive_iterations_done"), std::string::npos);
  EXPECT_NE(Metrics.find("# TYPE alive_iterations_done counter"),
            std::string::npos)
      << Metrics;
  // Registry slugs surface deterministically: bug.crash -> alive_bug_crash.
  EXPECT_NE(Metrics.find("alive_bug_"), std::string::npos) << Metrics;
  // Histograms render as summaries with ordered quantiles.
  EXPECT_NE(Metrics.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(Metrics.find("_sum"), std::string::npos);
  EXPECT_NE(Metrics.find("_count"), std::string::npos);
  // ... and as a native histogram family (_hist) with cumulative
  // le-labelled buckets capped by +Inf.
  EXPECT_NE(Metrics.find("_hist histogram"), std::string::npos) << Metrics;
  EXPECT_NE(Metrics.find("_hist_bucket{le=\""), std::string::npos) << Metrics;
  EXPECT_NE(Metrics.find("le=\"+Inf\""), std::string::npos) << Metrics;

  // /status carries the config echo, shard progress and event accounting.
  std::string Status = body(httpGet(M.port(), "/status"));
  for (const char *Key :
       {"\"config\"", "\"running\"", "\"done\"", "\"workers\"", "\"shards\"",
        "\"feedback\"", "\"events\"", "\"series\"", "\"stats\"",
        "observability_test"})
    EXPECT_NE(Status.find(Key), std::string::npos) << Key << "\n" << Status;
  EXPECT_NE(Status.find("\"accepted\""), std::string::npos);

  // The post-run snapshot still reports the merged totals: done == target.
  EXPECT_NE(Status.find("\"done\": 300"), std::string::npos) << Status;

  // /series accumulated at least one sample at the 5ms cadence.
  Timer Wait;
  while (M.seriesSize() == 0 && Wait.seconds() < 5.0)
    std::this_thread::yield();
  EXPECT_GT(M.seriesSize(), 0u);
  std::string Series = body(httpGet(M.port(), "/series"));
  EXPECT_NE(Series.find("\"points\""), std::string::npos) << Series;
  EXPECT_NE(Series.find("\"done\""), std::string::npos) << Series;

  // /healthz: the campaign is over, nothing is stale.
  std::string Health = httpGet(M.port(), "/healthz");
  EXPECT_NE(statusLine(Health).find("200"), std::string::npos) << Health;

  M.setEngine(nullptr);
  M.stop();
}

//===----------------------------------------------------------------------===//
// The headline invariant: the metrics server never perturbs determinism.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, DeterministicReportUnaffectedByMetricsServer) {
  FuzzOptions Opts = twoBugOptions(200);

  auto ReportFor = [&](bool WithMetrics) {
    CampaignEngine Engine(Opts, 2);
    Engine.loadModule(parseOk(TwoBugCorpus));

    std::unique_ptr<MetricsServer> M;
    std::thread Hammer;
    std::atomic<bool> Stop{false};
    if (WithMetrics) {
      MetricsOptions MO;
      MO.SnapshotInterval = 0.001; // snapshot aggressively during the run
      M.reset(new MetricsServer(MO));
      M->setEngine(&Engine);
      Engine.setEventQueue(&M->events());
      std::string Err;
      EXPECT_TRUE(M->start(Err)) << Err;
      // Hammer the observer endpoints from a second thread while the
      // campaign runs: concurrent liveSnapshot() + renders.
      uint16_t Port = M->port();
      Hammer = std::thread([Port, &Stop] {
        while (!Stop.load(std::memory_order_acquire)) {
          httpGet(Port, "/metrics");
          httpGet(Port, "/status");
          httpGet(Port, "/healthz");
        }
      });
    }

    const FuzzStats &S = Engine.run();
    if (WithMetrics) {
      Stop.store(true, std::memory_order_release);
      Hammer.join();
      M->setEngine(nullptr);
      M->stop();
    }

    RunReportConfig RC;
    RC.Tool = "observability_test";
    RC.Passes = Opts.Passes;
    RC.Iterations = Opts.Iterations;
    RC.BaseSeed = Opts.BaseSeed;
    RC.Jobs = 2;
    RC.WallSeconds = S.TotalSeconds;
    RC.TraceDropped = Engine.traceDropped();
    std::ostringstream OS;
    writeRunReport(OS, RC, S, Engine.bugs(), Engine.registry());
    return OS.str();
  };

  std::string Plain = ReportFor(false), Observed = ReportFor(true);
  auto DeterministicPart = [](const std::string &R) {
    size_t Pos = R.find("\"volatile\"");
    EXPECT_NE(Pos, std::string::npos);
    return R.substr(0, Pos);
  };
  EXPECT_EQ(DeterministicPart(Plain), DeterministicPart(Observed));
  // v5 volatile block is present either way.
  EXPECT_NE(Plain.find("\"trace\""), std::string::npos);
  EXPECT_NE(Observed.find("\"dropped_events\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Cost-attribution endpoints: /profile.json, /flamegraph.json, /dashboard.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, ProfileEndpointsRoundTrip) {
  FuzzOptions Opts = twoBugOptions(150);
  Opts.UseSharedTVCache = true;
  Opts.Profile.Enabled = true;
  Opts.Profile.TopK = 8;
  Opts.Profile.SamplingIntervalMs = 5;
  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));

  MetricsServer M;
  M.setEngine(&Engine);
  Engine.setEventQueue(&M.events());
  std::string Err;
  ASSERT_TRUE(M.start(Err)) << Err;

  // Before the run the endpoint answers (enabled, but nothing tracked or
  // everything zero) rather than erroring.
  std::string Early = httpGet(M.port(), "/profile.json");
  EXPECT_NE(statusLine(Early).find("200"), std::string::npos) << Early;
  EXPECT_NE(body(Early).find("\"enabled\""), std::string::npos);

  Engine.run();

  std::string Profile = body(httpGet(M.port(), "/profile.json"));
  EXPECT_NE(Profile.find("\"enabled\": true"), std::string::npos) << Profile;
  EXPECT_NE(Profile.find("\"topk\": 8"), std::string::npos) << Profile;
  EXPECT_NE(Profile.find("\"queries\""), std::string::npos) << Profile;
  EXPECT_NE(Profile.find("\"rank\": 1"), std::string::npos) << Profile;
  EXPECT_NE(Profile.find("\"decisions\""), std::string::npos);
  EXPECT_NE(Profile.find("\"volatile\""), std::string::npos);
  // The shared cache was on, so shard heat rows are present.
  EXPECT_NE(Profile.find("\"cache_shards\""), std::string::npos);
  EXPECT_NE(Profile.find("\"lock_waits\""), std::string::npos);

  std::string FG = httpGet(M.port(), "/flamegraph.json");
  EXPECT_NE(statusLine(FG).find("200"), std::string::npos) << FG;
  EXPECT_NE(FG.find("application/json"), std::string::npos);
  EXPECT_NE(body(FG).find("\"interval_ms\": 5"), std::string::npos) << FG;
  EXPECT_NE(body(FG).find("\"samples\""), std::string::npos);
  EXPECT_NE(body(FG).find("\"stacks\""), std::string::npos);

  std::string Dash = httpGet(M.port(), "/dashboard");
  EXPECT_NE(statusLine(Dash).find("200"), std::string::npos) << Dash;
  EXPECT_NE(Dash.find("text/html"), std::string::npos);
  EXPECT_NE(body(Dash).find("<title>"), std::string::npos);
  EXPECT_NE(body(Dash).find("EventSource"), std::string::npos);
  EXPECT_NE(body(Dash).find("/profile.json"), std::string::npos);

  // The index advertises the new endpoints.
  std::string Index = body(httpGet(M.port(), "/"));
  EXPECT_NE(Index.find("/profile.json"), std::string::npos) << Index;
  EXPECT_NE(Index.find("/flamegraph.json"), std::string::npos);
  EXPECT_NE(Index.find("/dashboard"), std::string::npos);

  M.setEngine(nullptr);
  M.stop();
}

TEST(ObservabilityTest, ProfileEndpointDisabledWithoutFlag) {
  FuzzOptions Opts = twoBugOptions(20);
  CampaignEngine Engine(Opts, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  MetricsServer M;
  M.setEngine(&Engine);
  std::string Err;
  ASSERT_TRUE(M.start(Err)) << Err;
  Engine.run();
  EXPECT_NE(body(httpGet(M.port(), "/profile.json")).find("\"enabled\": false"),
            std::string::npos);
  M.setEngine(nullptr);
  M.stop();
}

//===----------------------------------------------------------------------===//
// HttpServer hardening: read deadline and SSE keep-alive.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, HttpServerReadDeadlineAnswers408) {
  HttpServer S;
  S.setHandler([](const HttpRequest &) { return HttpResponse(); });
  S.setReadDeadlineSeconds(0.2);
  std::string Err;
  ASSERT_TRUE(S.start(0, Err)) << Err;

  // A slow-loris client: opens the connection, sends half a request line,
  // then stalls. The server must answer 408 and close instead of holding
  // the MaxConns slot forever.
  int FD = connectLoopback(S.port());
  ASSERT_GE(FD, 0);
  ASSERT_TRUE(sendAll(FD, "GET /slow HTTP/1.1\r\n"));
  std::string Resp = readToEOF(FD, 5.0);
  EXPECT_NE(Resp.find("408 Request Timeout"), std::string::npos) << Resp;
  ::close(FD);

  // A prompt client on the same server is unaffected.
  std::string Ok = httpGet(S.port(), "/ok");
  EXPECT_NE(statusLine(Ok).find("200"), std::string::npos) << Ok;
  S.stop();
}

TEST(ObservabilityTest, SSEKeepAlivePingReachesIdleStreams) {
  HttpServer S;
  S.setHandler([](const HttpRequest &Req) {
    HttpResponse R;
    if (Req.Path == "/stream") {
      R.Stream = true;
      R.Body = ": welcome\n\n";
    }
    return R;
  });
  S.setKeepAliveSeconds(0.05);
  std::string Err;
  ASSERT_TRUE(S.start(0, Err)) << Err;

  int FD = connectLoopback(S.port());
  ASSERT_GE(FD, 0);
  ASSERT_TRUE(sendAll(FD, "GET /stream HTTP/1.1\r\nHost: x\r\n\r\n"));
  // With no events at all, the comment-frame heartbeat still arrives (an
  // EventSource parser discards it; proxies see traffic).
  std::string Got = readUntil(FD, ": ping", 5.0);
  EXPECT_NE(Got.find(": ping"), std::string::npos) << Got;
  ::close(FD);
  S.stop();
}

//===----------------------------------------------------------------------===//
// Run report schema v6: the profile blocks.
//===----------------------------------------------------------------------===//

TEST(ObservabilityTest, RunReportV6ProfileBlocks) {
  FuzzOptions Opts = twoBugOptions(100);
  Opts.Profile.Enabled = true;
  Opts.Profile.TopK = 8;
  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Engine.run();

  RunReportConfig RC;
  RC.Tool = "observability_test";
  RC.Passes = Opts.Passes;
  RC.Iterations = Opts.Iterations;
  RC.BaseSeed = Opts.BaseSeed;
  RC.Jobs = 2;
  RC.WallSeconds = S.TotalSeconds;
  std::ostringstream OS;
  writeRunReport(OS, RC, S, Engine.bugs(), Engine.registry(),
                 &Engine.profile());
  std::string R = OS.str();

  EXPECT_NE(R.find("\"schema_version\": 7"), std::string::npos);
  // Both sections carry a profile block: the deterministic top-K table
  // and the volatile sampling/shard-heat data.
  size_t Det = R.find("\"profile\": {\"enabled\": true, \"topk\": 8");
  ASSERT_NE(Det, std::string::npos) << R;
  EXPECT_NE(R.find("\"queries\"", Det), std::string::npos);
  size_t Vol = R.find("\"profile\": {\"enabled\": true, \"data\"", Det + 1);
  ASSERT_NE(Vol, std::string::npos) << R;
  EXPECT_NE(R.find("\"sampling\"", Vol), std::string::npos);
  EXPECT_NE(R.find("\"query_seconds\"", Vol), std::string::npos);

  // Without a profile, both blocks collapse to {"enabled": false}.
  std::ostringstream OS2;
  writeRunReport(OS2, RC, S, Engine.bugs(), Engine.registry());
  std::string Plain = OS2.str();
  size_t First = Plain.find("\"profile\": {\"enabled\": false}");
  EXPECT_NE(First, std::string::npos);
  EXPECT_NE(Plain.find("\"profile\": {\"enabled\": false}", First + 1),
            std::string::npos);
}
