//===- tests/bitblaster_test.cpp - Bit-blaster cross-check tests -----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Cross-checks the three semantic layers of the SMT stack:
/// the Term evaluator, the bit-blaster+SAT pipeline, and APInt.
///
//===----------------------------------------------------------------------===//

#include "smt/BitBlaster.h"
#include "support/RandomGenerator.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

/// Builds a random binary/unary term over variables X, Y using every kind.
TermRef buildKind(TermBuilder &B, TermKind K, TermRef X, TermRef Y,
                  unsigned W) {
  switch (K) {
  case TermKind::And:
    return B.mkAnd(X, Y);
  case TermKind::Or:
    return B.mkOr(X, Y);
  case TermKind::Xor:
    return B.mkXor(X, Y);
  case TermKind::Not:
    return B.mkNot(X);
  case TermKind::Add:
    return B.mkAdd(X, Y);
  case TermKind::Sub:
    return B.mkSub(X, Y);
  case TermKind::Mul:
    return B.mkMul(X, Y);
  case TermKind::UDiv:
    return B.mkUDiv(X, Y);
  case TermKind::URem:
    return B.mkURem(X, Y);
  case TermKind::SDiv:
    return B.mkSDiv(X, Y);
  case TermKind::SRem:
    return B.mkSRem(X, Y);
  case TermKind::Shl:
    return B.mkShl(X, Y);
  case TermKind::LShr:
    return B.mkLShr(X, Y);
  case TermKind::AShr:
    return B.mkAShr(X, Y);
  case TermKind::Eq:
    return B.mkEq(X, Y);
  case TermKind::Ult:
    return B.mkUlt(X, Y);
  case TermKind::Slt:
    return B.mkSlt(X, Y);
  case TermKind::ZExt:
    return B.mkZExt(X, W + 3);
  case TermKind::SExt:
    return B.mkSExt(X, W + 3);
  case TermKind::Trunc:
    return W > 1 ? B.mkTrunc(X, W - 1) : X;
  default:
    return X;
  }
}

const TermKind AllKinds[] = {
    TermKind::And,  TermKind::Or,   TermKind::Xor,  TermKind::Not,
    TermKind::Add,  TermKind::Sub,  TermKind::Mul,  TermKind::UDiv,
    TermKind::URem, TermKind::SDiv, TermKind::SRem, TermKind::Shl,
    TermKind::LShr, TermKind::AShr, TermKind::Eq,   TermKind::Ult,
    TermKind::Slt,  TermKind::ZExt, TermKind::SExt, TermKind::Trunc};

} // namespace

// Property: with inputs pinned to concrete values, the SAT model of a term
// equals the Term evaluator's result, for every term kind and many widths.
class BlasterKindTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BlasterKindTest, BlastAgreesWithEvaluate) {
  unsigned W = GetParam();
  RandomGenerator RNG(100 + W);
  for (TermKind K : AllKinds) {
    for (int Trial = 0; Trial != 8; ++Trial) {
      TermBuilder B;
      TermRef X = B.mkVar(W, "x");
      TermRef Y = B.mkVar(W, "y");
      TermRef T = buildKind(B, K, X, Y, W);

      APInt XV = RNG.nextAPInt(W), YV = RNG.nextAPInt(W);
      std::map<unsigned, APInt> Assign{{X->VarId, XV}, {Y->VarId, YV}};
      APInt Expected = B.evaluate(T, Assign);

      SatSolver S;
      BitBlaster BB(S);
      BB.assertTrue(B.mkEq(X, B.mkConst(XV)));
      BB.assertTrue(B.mkEq(Y, B.mkConst(YV)));
      const auto &Bits = BB.blast(T);
      (void)Bits;
      ASSERT_EQ(S.solve(), SatSolver::Result::Sat)
          << "kind " << (int)K << " width " << W;
      EXPECT_EQ(BB.modelValue(T), Expected)
          << "kind " << (int)K << " width " << W << " x=" << XV.toString()
          << " y=" << YV.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BlasterKindTest,
                         ::testing::Values(1, 2, 3, 7, 8, 13, 16));

TEST(BlasterTest, AlgebraicIdentitiesAreUnsat) {
  // Each identity is asserted to FAIL for some input; UNSAT proves it holds
  // universally.
  struct Identity {
    const char *Name;
    std::function<TermRef(TermBuilder &, TermRef, TermRef)> Make;
  };
  const unsigned W = 8;
  std::vector<Identity> Identities = {
      {"x+y == y+x",
       [](TermBuilder &B, TermRef X, TermRef Y) {
         return B.mkNe(B.mkAdd(X, Y), B.mkAdd(Y, X));
       }},
      {"x-x == 0",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         return B.mkNe(B.mkSub(X, X), B.mkConst(W, 0));
       }},
      {"x*2 == x+x",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         return B.mkNe(B.mkMul(X, B.mkConst(W, 2)), B.mkAdd(X, X));
       }},
      {"x<<1 == x*2",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         return B.mkNe(B.mkShl(X, B.mkConst(W, 1)),
                       B.mkMul(X, B.mkConst(W, 2)));
       }},
      {"de morgan",
       [](TermBuilder &B, TermRef X, TermRef Y) {
         return B.mkNe(B.mkNot(B.mkAnd(X, Y)),
                       B.mkOr(B.mkNot(X), B.mkNot(Y)));
       }},
      {"y!=0 -> (x udiv y)*y + (x urem y) == x",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         TermRef NZ = B.mkNe(Y, B.mkConst(W, 0));
         TermRef Id = B.mkEq(
             B.mkAdd(B.mkMul(B.mkUDiv(X, Y), Y), B.mkURem(X, Y)), X);
         return B.mkAnd(NZ, B.mkNot(Id));
       }},
      {"y!=0 -> (x sdiv y)*y + (x srem y) == x",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         TermRef NZ = B.mkNe(Y, B.mkConst(W, 0));
         TermRef Id = B.mkEq(
             B.mkAdd(B.mkMul(B.mkSDiv(X, Y), Y), B.mkSRem(X, Y)), X);
         return B.mkAnd(NZ, B.mkNot(Id));
       }},
      {"slt == ult with flipped signs",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         TermRef Flip = B.mkConst(APInt::getSignedMinValue(W));
         return B.mkNe(B.mkSlt(X, Y),
                       B.mkUlt(B.mkXor(X, Flip), B.mkXor(Y, Flip)));
       }},
      {"zext-trunc keeps low bits",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         return B.mkNe(B.mkTrunc(B.mkZExt(X, W + 4), W), X);
       }},
      {"ashr sign fill",
       [&](TermBuilder &B, TermRef X, TermRef Y) {
         // (x ashr 7) is 0 or -1 for i8.
         TermRef Sh = B.mkAShr(X, B.mkConst(W, W - 1));
         return B.mkAnd(B.mkNe(Sh, B.mkConst(W, 0)),
                        B.mkNe(Sh, B.mkConst(APInt::getAllOnes(W))));
       }},
  };

  for (const auto &Id : Identities) {
    TermBuilder B;
    TermRef X = B.mkVar(W, "x"), Y = B.mkVar(W, "y");
    SatSolver S;
    BitBlaster BB(S);
    BB.assertTrue(Id.Make(B, X, Y));
    EXPECT_EQ(S.solve(), SatSolver::Result::Unsat) << Id.Name;
  }
}

TEST(BlasterTest, FindsCounterexamples) {
  // x * y == y is NOT an identity; the model must be a real countermodel.
  const unsigned W = 8;
  TermBuilder B;
  TermRef X = B.mkVar(W, "x"), Y = B.mkVar(W, "y");
  SatSolver S;
  BitBlaster BB(S);
  TermRef Claim = B.mkNe(B.mkMul(X, Y), Y);
  BB.assertTrue(Claim);
  ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
  auto Assign = BB.extractAssignment();
  EXPECT_EQ(B.evaluate(Claim, Assign), APInt(1, 1));
  EXPECT_NE(BB.modelValue(X) * BB.modelValue(Y), BB.modelValue(Y));
}

TEST(BlasterTest, IteSelects) {
  const unsigned W = 4;
  TermBuilder B;
  TermRef C = B.mkVar(1, "c");
  TermRef T = B.mkIte(C, B.mkConst(W, 5), B.mkConst(W, 9));
  {
    SatSolver S;
    BitBlaster BB(S);
    BB.assertTrue(C);
    const auto &Bits = BB.blast(T);
    (void)Bits;
    ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
    EXPECT_EQ(BB.modelValue(T).getZExtValue(), 5u);
  }
  {
    SatSolver S;
    BitBlaster BB(S);
    BB.assertTrue(B.mkNot(C));
    const auto &Bits = BB.blast(T);
    (void)Bits;
    ASSERT_EQ(S.solve(), SatSolver::Result::Sat);
    EXPECT_EQ(BB.modelValue(T).getZExtValue(), 9u);
  }
}

TEST(TermBuilderTest, HashConsing) {
  TermBuilder B;
  TermRef X = B.mkVar(8, "x");
  EXPECT_EQ(B.mkAdd(X, B.mkConst(8, 1)), B.mkAdd(X, B.mkConst(8, 1)));
  EXPECT_NE(B.mkAdd(X, B.mkConst(8, 1)), B.mkAdd(X, B.mkConst(8, 2)));
  // Constant folding in the builder.
  EXPECT_TRUE(B.mkAdd(B.mkConst(8, 3), B.mkConst(8, 4))->isConst());
  EXPECT_EQ(B.mkAdd(B.mkConst(8, 3), B.mkConst(8, 4))->ConstVal.getZExtValue(),
            7u);
  // Not-not cancellation and ite folding.
  EXPECT_EQ(B.mkNot(B.mkNot(X)), X);
  EXPECT_EQ(B.mkIte(B.mkTrue(), X, B.mkConst(8, 0)), X);
  EXPECT_EQ(B.mkIte(B.mkVar(1, "c"), X, X), X);
}

TEST(TermBuilderTest, EvaluateDeepChain) {
  // A long linear chain must not overflow the evaluator (explicit stack).
  TermBuilder B;
  TermRef X = B.mkVar(16, "x");
  TermRef T = X;
  for (int I = 0; I != 20000; ++I)
    T = B.mkAdd(T, B.mkConst(16, 1));
  std::map<unsigned, APInt> Assign{{X->VarId, APInt(16, 5)}};
  EXPECT_EQ(B.evaluate(T, Assign).getZExtValue(), (5 + 20000) & 0xFFFF);
}
