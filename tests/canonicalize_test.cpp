//===- tests/canonicalize_test.cpp - Canonicalization + shared cache tests --===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the shared-cache key pipeline: canonicalizePair must map
/// alpha-renamed and commutative-operand-swapped variants of a pair onto
/// one canonical text (one cache key) while refusing pairs whose verdict
/// depends on module context, and SharedTVCache must behave as a bounded
/// sharded LRU that is safe to hammer from many threads.
///
//===----------------------------------------------------------------------===//

#include "tv/Canonicalize.h"
#include "tv/SharedTVCache.h"

#include "parser/Parser.h"

#include <gtest/gtest.h>
#include <thread>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// Canonical source text of the pair (F, F) from a one-function module —
/// the common shape in these tests. The src and tgt clones differ only in
/// their fixed canonical names (refinement direction matters), so the
/// bodies must agree.
std::string canonSelf(const std::string &IR, const std::string &Name) {
  auto M = parseOk(IR);
  Function *F = M->getFunction(Name);
  EXPECT_NE(F, nullptr);
  CanonicalPair CP = canonicalizePair(*F, *F);
  EXPECT_NE(CP.M, nullptr);
  auto Body = [](const std::string &Text) {
    size_t NL = Text.find('\n');
    return NL == std::string::npos ? Text : Text.substr(NL + 1);
  };
  EXPECT_EQ(Body(CP.SrcText), Body(CP.TgtText));
  return CP.SrcText;
}

TVResult verdict(TVVerdict V, const std::string &Detail = "") {
  TVResult R;
  R.Verdict = V;
  R.Detail = Detail;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Canonicalization: structurally equal variants share one text.
//===----------------------------------------------------------------------===//

TEST(CanonicalizeTest, AlphaRenamedVariantsCanonicalizeIdentically) {
  std::string A = canonSelf(R"(
define i32 @f(i32 %x, i32 %y) {
entry:
  %sum = add i32 %x, %y
  %r = mul i32 %sum, %x
  ret i32 %r
}
)",
                            "f");
  // Same structure, every name different (function, args, block, insts).
  std::string B = canonSelf(R"(
define i32 @completely_other(i32 %a, i32 %b) {
bb0:
  %t0 = add i32 %a, %b
  %t1 = mul i32 %t0, %a
  ret i32 %t1
}
)",
                            "completely_other");
  EXPECT_EQ(A, B);
  // A structurally different function must not collide.
  std::string C = canonSelf(R"(
define i32 @f(i32 %x, i32 %y) {
  %sum = add i32 %x, %y
  %r = mul i32 %sum, %y
  ret i32 %r
}
)",
                            "f");
  EXPECT_NE(A, C);
}

TEST(CanonicalizeTest, CommutativeOperandSwapCanonicalizesIdentically) {
  // add/mul/and/or/xor: swapped operands are one canonical function.
  std::string A = canonSelf(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 7
  %b = mul i32 %a, %x
  ret i32 %b
}
)",
                            "f");
  std::string B = canonSelf(R"(
define i32 @f(i32 %x) {
  %a = add i32 7, %x
  %b = mul i32 %x, %a
  ret i32 %b
}
)",
                            "f");
  EXPECT_EQ(A, B);
  // Non-commutative ops keep their operand order: a swapped sub is a
  // different function and must key differently.
  std::string Sub = canonSelf(R"(
define i32 @f(i32 %x, i32 %y) {
  %a = sub i32 %x, %y
  ret i32 %a
}
)",
                              "f");
  std::string SubSwapped = canonSelf(R"(
define i32 @f(i32 %x, i32 %y) {
  %a = sub i32 %y, %x
  ret i32 %a
}
)",
                                     "f");
  EXPECT_NE(Sub, SubSwapped);
}

TEST(CanonicalizeTest, ICmpPredicateMirrorCanonicalizesIdentically) {
  // icmp sgt %x, %y and icmp slt %y, %x are the same comparison.
  std::string A = canonSelf(R"(
define i1 @f(i32 %x, i32 %y) {
  %c = icmp sgt i32 %x, %y
  ret i1 %c
}
)",
                            "f");
  std::string B = canonSelf(R"(
define i1 @f(i32 %x, i32 %y) {
  %c = icmp slt i32 %y, %x
  ret i1 %c
}
)",
                            "f");
  EXPECT_EQ(A, B);
  // But sgt(x, y) is not slt(x, y): the mirrored pair must stay distinct.
  std::string C = canonSelf(R"(
define i1 @f(i32 %x, i32 %y) {
  %c = icmp slt i32 %x, %y
  ret i1 %c
}
)",
                            "f");
  EXPECT_NE(A, C);
}

TEST(CanonicalizeTest, PairRefusesCallsIntoDefinedFunctions) {
  // Same rule as TVCache::makeKey: a pair calling a defined non-intrinsic
  // depends on callee bodies its own text cannot capture.
  auto M = parseOk(R"(
declare i32 @ext(i32)

define i32 @callee(i32 %x) {
  ret i32 %x
}
define i32 @calls_defined(i32 %x) {
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}
define i32 @calls_declared(i32 %x) {
  %r = call i32 @ext(i32 %x)
  ret i32 %r
}
)");
  Function *Defined = M->getFunction("calls_defined");
  Function *Declared = M->getFunction("calls_declared");
  EXPECT_EQ(canonicalizePair(*Defined, *Defined).M, nullptr);
  EXPECT_EQ(canonicalizePair(*Declared, *Defined).M, nullptr);
  // Declarations are modeled from the callee name, which canonicalization
  // must preserve — renaming @ext would change the environment oracle.
  CanonicalPair CP = canonicalizePair(*Declared, *Declared);
  ASSERT_NE(CP.M, nullptr);
  EXPECT_NE(CP.SrcText.find("@ext"), std::string::npos) << CP.SrcText;
}

TEST(CanonicalizeTest, CounterexampleArgumentsSurviveCanonicalization) {
  // The argument list (count, types, order) is what a counterexample binds
  // to; canonicalization may only rename, never reorder or retype.
  auto M = parseOk(R"(
define i32 @f(i32 %hi, i8 %lo) {
  %w = zext i8 %lo to i32
  %r = add i32 %hi, %w
  ret i32 %r
}
)");
  Function *F = M->getFunction("f");
  CanonicalPair CP = canonicalizePair(*F, *F);
  ASSERT_NE(CP.M, nullptr);
  ASSERT_EQ(CP.Src->getNumArgs(), F->getNumArgs());
  // Types are uniqued per module; compare the rendered type, not the
  // pointer.
  for (unsigned I = 0; I != F->getNumArgs(); ++I)
    EXPECT_EQ(CP.Src->getArg(I)->getType()->str(),
              F->getArg(I)->getType()->str());
}

//===----------------------------------------------------------------------===//
// SharedTVCache: sharded LRU semantics.
//===----------------------------------------------------------------------===//

TEST(SharedTVCacheTest, LookupReturnsInsertedVerdictByValue) {
  SharedTVCache C(64, 4);
  EXPECT_EQ(C.shardCount(), 4u);
  TVResult Out;
  EXPECT_FALSE(C.lookup("k1", Out));
  C.insert("k1", verdict(TVVerdict::Correct, "proved"));
  ASSERT_TRUE(C.lookup("k1", Out));
  EXPECT_EQ(Out.Verdict, TVVerdict::Correct);
  EXPECT_EQ(Out.Detail, "proved");
  EXPECT_EQ(C.size(), 1u);
}

TEST(SharedTVCacheTest, FirstWriterWinsOnRacedKeys) {
  SharedTVCache C(8, 1);
  C.insert("k", verdict(TVVerdict::Correct, "first"));
  C.insert("k", verdict(TVVerdict::Incorrect, "second"));
  TVResult Out;
  ASSERT_TRUE(C.lookup("k", Out));
  EXPECT_EQ(Out.Detail, "first");
  EXPECT_EQ(C.size(), 1u);
}

TEST(SharedTVCacheTest, ShardsEvictIndependentlyLRU) {
  // One shard of capacity 2: classic LRU behavior, recency refresh
  // included.
  SharedTVCache C(2, 1);
  EXPECT_FALSE(C.insert("a", verdict(TVVerdict::Correct)));
  EXPECT_FALSE(C.insert("b", verdict(TVVerdict::Correct)));
  TVResult Out;
  EXPECT_TRUE(C.lookup("a", Out)); // a becomes MRU; b is the victim
  EXPECT_TRUE(C.insert("c", verdict(TVVerdict::Correct)));
  EXPECT_TRUE(C.lookup("a", Out));
  EXPECT_FALSE(C.lookup("b", Out));
  EXPECT_TRUE(C.lookup("c", Out));
}

TEST(SharedTVCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SharedTVCache(64, 3).shardCount(), 4u);
  EXPECT_EQ(SharedTVCache(64, 0).shardCount(), SharedTVCache::DefaultShards);
  // Capacity divides across shards, min 1 per shard.
  EXPECT_GE(SharedTVCache(1, 8).capacity(), 8u);
}

TEST(SharedTVCacheTest, MakeKeyMatchesCanonicalTextsAndOptions) {
  TVOptions Opts;
  std::string K1 = SharedTVCache::makeKey("srcA", "tgtA", Opts);
  std::string K2 = SharedTVCache::makeKey("srcA", "tgtB", Opts);
  std::string K3 = SharedTVCache::makeKey("tgtA", "srcA", Opts);
  ASSERT_FALSE(K1.empty());
  EXPECT_NE(K1, K2);
  EXPECT_NE(K1, K3); // direction matters
  TVOptions P = Opts;
  P.PrescreenTrials = 4; // prescreen changes Incorrect details -> new key
  EXPECT_NE(SharedTVCache::makeKey("srcA", "tgtA", P), K1);
}

TEST(SharedTVCacheTest, ConcurrentMixedUseIsSafe) {
  // 8 threads inserting/looking up an overlapping key space through a
  // deliberately tiny cache: exercises cross-shard concurrency, eviction
  // under contention, and the copy-out-by-value contract (TSan-checked in
  // sanitizer builds; here we assert every completed lookup is coherent).
  SharedTVCache C(32, 4);
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Bad{0};
  for (unsigned T = 0; T != 8; ++T)
    Threads.emplace_back([&C, &Bad, T] {
      for (unsigned I = 0; I != 2000; ++I) {
        std::string Key = "key" + std::to_string((T * 7 + I) % 64);
        TVResult Out;
        if (C.lookup(Key, Out)) {
          if (Out.Detail != Key) // a hit must replay the inserted verdict
            ++Bad;
        } else {
          C.insert(Key, verdict(TVVerdict::Correct, Key));
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Bad.load(), 0u);
  EXPECT_LE(C.size(), C.capacity());
}
