//===- tests/campaign_test.cpp - Parallel campaign engine tests -------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regression tests for the campaign-scale fixes — release-mode pipeline
/// validation, per-campaign bug contexts, saveMutant durability, the
/// unbounded-config guard, side-effect-free seed replay — plus the parallel
/// engine's core guarantee: a -j N campaign yields a bug set byte-identical
/// to the sequential run, with identical summed statistics.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/RunReport.h"
#include "corpus/Corpus.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <algorithm>
#include <cstdlib>
#include <gtest/gtest.h>
#include <sstream>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// A small corpus with near-miss functions for an InstCombine crash
/// (PR52884) and an InstCombine miscompilation (PR50693).
const char *TwoBugCorpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

FuzzOptions twoBugOptions(uint64_t Iterations) {
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = Iterations;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  Opts.Bugs.enable(BugId::PR52884);
  Opts.Bugs.enable(BugId::PR50693);
  return Opts;
}

void expectSameRecord(const BugRecord &A, const BugRecord &B) {
  EXPECT_EQ(A.Kind, B.Kind);
  EXPECT_EQ(A.FunctionName, B.FunctionName);
  EXPECT_EQ(A.MutantSeed, B.MutantSeed);
  EXPECT_EQ(A.Detail, B.Detail);
  EXPECT_EQ(A.IssueId, B.IssueId);
  EXPECT_EQ(A.MutantIR, B.MutantIR);
}

void expectSameCounters(const FuzzStats &A, const FuzzStats &B) {
  EXPECT_EQ(A.MutantsGenerated, B.MutantsGenerated);
  EXPECT_EQ(A.MutationsApplied, B.MutationsApplied);
  EXPECT_EQ(A.Optimized, B.Optimized);
  EXPECT_EQ(A.Verified, B.Verified);
  // VerifySkipped is per-seed deterministic, so it sums identically across
  // any sharding. The TVCache hit/miss/eviction counters deliberately stay
  // out of this list: each worker warms a private cache, so the split
  // varies with the worker count (the verdicts, and thus everything
  // compared here, do not).
  EXPECT_EQ(A.VerifySkipped, B.VerifySkipped);
  EXPECT_EQ(A.RefinementFailures, B.RefinementFailures);
  EXPECT_EQ(A.Crashes, B.Crashes);
  EXPECT_EQ(A.Inconclusive, B.Inconclusive);
  EXPECT_EQ(A.FunctionsDropped, B.FunctionsDropped);
  EXPECT_EQ(A.InvalidMutants, B.InvalidMutants);
}

} // namespace

//===----------------------------------------------------------------------===//
// Release-mode pipeline validation.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, InvalidPipelineIsHardError) {
  // The old code validated buildPipeline with assert() only: an NDEBUG
  // build fuzzed an empty pipeline and reported zero bugs. Now it is a
  // config error in every build mode and the loop refuses to run.
  FuzzOptions Opts;
  Opts.Passes = "instcombine,no-such-pass";
  Opts.Iterations = 10;
  FuzzerLoop Loop(Opts);
  EXPECT_NE(Loop.configError().find("no-such-pass"), std::string::npos)
      << Loop.configError();
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();
  EXPECT_EQ(S.MutantsGenerated, 0u);

  CampaignEngine Engine(Opts, 2);
  EXPECT_FALSE(Engine.configError().empty());
  Engine.loadModule(parseOk(TwoBugCorpus));
  EXPECT_EQ(Engine.run().MutantsGenerated, 0u);
}

TEST(CampaignTest, EmptyPipelineIsHardError) {
  FuzzOptions Opts;
  Opts.Passes = "";
  FuzzerLoop Loop(Opts);
  EXPECT_FALSE(Loop.configError().empty());
}

//===----------------------------------------------------------------------===//
// Unbounded-config rejection.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, UnboundedConfigIsRejected) {
  FuzzOptions Opts;
  Opts.Iterations = 0;
  Opts.TimeLimitSeconds = 0;
  FuzzerLoop Loop(Opts);
  EXPECT_TRUE(Loop.configError().empty()); // pipeline itself is fine
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();
  EXPECT_EQ(S.MutantsGenerated, 0u);
  EXPECT_NE(Loop.configError().find("unbounded"), std::string::npos)
      << Loop.configError();

  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  EXPECT_NE(Engine.configError().find("unbounded"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Side-effect-free seed replay.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, MakeMutantReplayIsSideEffectFree) {
  FuzzOptions Opts = twoBugOptions(50);
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  // Replaying seeds (the §III-E reproducibility path) must not pollute
  // the campaign's statistics.
  for (uint64_t Seed : {3ull, 17ull, 123456ull})
    EXPECT_NE(Loop.makeMutant(Seed), nullptr);
  EXPECT_EQ(Loop.stats().MutationsApplied, 0u);
  EXPECT_EQ(Loop.stats().MutantsGenerated, 0u);
}

//===----------------------------------------------------------------------===//
// Per-campaign bug contexts.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, BugContextsDoNotCrossContaminate) {
  // Two concurrent campaigns over the same corpus: one fuzzes a buggy
  // compiler, one a correct compiler. With the old global registry the
  // clean campaign saw the other's enabled defects; each loop now owns
  // its context.
  FuzzOptions BuggyOpts = twoBugOptions(0);
  FuzzOptions CleanOpts = BuggyOpts;
  CleanOpts.Bugs.disableAll();

  FuzzerLoop Buggy(BuggyOpts), Clean(CleanOpts);
  Buggy.loadModule(parseOk(TwoBugCorpus));
  Clean.loadModule(parseOk(TwoBugCorpus));

  // Interleave the two campaigns iteration by iteration.
  for (uint64_t Seed = 1; Seed <= 400; ++Seed) {
    Buggy.runIteration(Seed);
    Clean.runIteration(Seed);
  }
  EXPECT_GT(Buggy.bugs().size(), 0u);
  EXPECT_EQ(Clean.bugs().size(), 0u);
  EXPECT_EQ(Clean.stats().Crashes, 0u);
  EXPECT_EQ(Clean.stats().RefinementFailures, 0u);
}

//===----------------------------------------------------------------------===//
// saveMutant durability.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, SaveFailuresAreCounted) {
  // A SaveDir that cannot be created ("/dev/null" is a file): the
  // artifacts are lost, but the loss must be visible in the stats.
  FuzzOptions Opts = twoBugOptions(3);
  Opts.SaveDir = "/dev/null/amr-cannot-exist";
  Opts.SaveAll = true;
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();
  EXPECT_EQ(S.MutantsSaved, 0u);
  EXPECT_GT(S.SaveFailures, 0u);
  // The directory error is recorded once (the old code latched
  // SaveDirReady=true on the failed create_directories and then failed
  // every write with no explanation).
  EXPECT_NE(Loop.saveDirError().find("cannot create save directory"),
            std::string::npos)
      << Loop.saveDirError();
  // Every lost artifact is counted even though the directory is only
  // attempted once (failing mutants are saved a second time, hence >=).
  EXPECT_GE(S.SaveFailures, S.MutantsGenerated);

  // The engine surfaces the same error from its workers.
  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  EXPECT_NE(Engine.saveDirError().find("cannot create save directory"),
            std::string::npos)
      << Engine.saveDirError();
}

//===----------------------------------------------------------------------===//
// Parallel determinism: the tentpole guarantee.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, ParallelBugSetIsByteIdenticalToSequential) {
  const uint64_t Iterations = 300;
  FuzzOptions Opts = twoBugOptions(Iterations);

  // Reference: the plain sequential FuzzerLoop.
  FuzzerLoop Seq(Opts);
  Seq.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &SeqStats = Seq.run();
  ASSERT_GT(Seq.bugs().size(), 0u)
      << "corpus must surface bugs for the comparison to mean anything";

  for (unsigned Jobs : {1u, 4u}) {
    CampaignEngine Engine(Opts, Jobs);
    Engine.loadModule(parseOk(TwoBugCorpus));
    const FuzzStats &ParStats = Engine.run();
    ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();

    expectSameCounters(SeqStats, ParStats);
    ASSERT_EQ(Seq.bugs().size(), Engine.bugs().size()) << "jobs=" << Jobs;
    for (size_t I = 0; I != Seq.bugs().size(); ++I)
      expectSameRecord(Seq.bugs()[I], Engine.bugs()[I]);
  }
}

//===----------------------------------------------------------------------===//
// Change-tracking skips and the TV verdict cache.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, UnchangedFunctionsAreSkipped) {
  // A pipeline that provably never touches this integer-only corpus:
  // every mutant's functions come out of the optimizer byte-identical,
  // so the loop must skip every refinement check.
  FuzzOptions Opts;
  Opts.Passes = "infer-alignment";
  Opts.Iterations = 20;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();
  EXPECT_EQ(S.Verified, 0u);
  EXPECT_GT(S.VerifySkipped, 0u);
  EXPECT_EQ(Loop.bugs().size(), 0u);

  // The escape hatch re-verifies everything.
  FuzzOptions Full = Opts;
  Full.SkipUnchanged = false;
  FuzzerLoop FullLoop(Full);
  FullLoop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &FS = FullLoop.run();
  EXPECT_EQ(FS.VerifySkipped, 0u);
  EXPECT_EQ(FS.Verified, S.VerifySkipped);
}

TEST(CampaignTest, CacheOnAndOffFindIdenticalBugs) {
  // The acceptance criterion: with the verdict cache on, the campaign
  // performs measurably fewer checkRefinement calls (misses < the
  // cache-off run's Verified) while the bug report stays byte-identical.
  FuzzOptions On = twoBugOptions(300);
  FuzzOptions Off = On;
  Off.TVCacheSize = 0;

  FuzzerLoop OnLoop(On), OffLoop(Off);
  OnLoop.loadModule(parseOk(TwoBugCorpus));
  OffLoop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &SOn = OnLoop.run();
  const FuzzStats &SOff = OffLoop.run();

  ASSERT_GT(OffLoop.bugs().size(), 0u);
  expectSameCounters(SOn, SOff);
  ASSERT_EQ(OnLoop.bugs().size(), OffLoop.bugs().size());
  for (size_t I = 0; I != OnLoop.bugs().size(); ++I)
    expectSameRecord(OnLoop.bugs()[I], OffLoop.bugs()[I]);

  EXPECT_GT(SOn.TVCacheHits, 0u) << "cache never hit: memoization is dead";
  // Misses == actual checker invocations; the cache-off loop invoked the
  // checker once per verified function.
  EXPECT_LT(SOn.TVCacheMisses, SOff.Verified);
  EXPECT_EQ(SOn.TVCacheHits + SOn.TVCacheMisses, SOn.Verified);
  EXPECT_EQ(SOff.TVCacheHits, 0u);
  EXPECT_EQ(SOff.TVCacheMisses, 0u);
}

TEST(CampaignTest, ParallelDeterminismAcrossCacheConfigs) {
  // -j4 == -j1 byte-identical for every cache configuration: default,
  // disabled, and a tiny capacity that forces constant eviction.
  for (size_t CacheSize : {TVCache::DefaultCapacity, (size_t)0, (size_t)4}) {
    FuzzOptions Opts = twoBugOptions(200);
    Opts.TVCacheSize = CacheSize;

    FuzzerLoop Seq(Opts);
    Seq.loadModule(parseOk(TwoBugCorpus));
    const FuzzStats &SeqStats = Seq.run();
    ASSERT_GT(Seq.bugs().size(), 0u) << "cache=" << CacheSize;

    CampaignEngine Engine(Opts, 4);
    Engine.loadModule(parseOk(TwoBugCorpus));
    const FuzzStats &ParStats = Engine.run();
    expectSameCounters(SeqStats, ParStats);
    ASSERT_EQ(Seq.bugs().size(), Engine.bugs().size())
        << "cache=" << CacheSize;
    for (size_t I = 0; I != Seq.bugs().size(); ++I)
      expectSameRecord(Seq.bugs()[I], Engine.bugs()[I]);
  }
}

TEST(CampaignTest, ParallelReplayRegeneratesSequentialMutant) {
  // Engine-side §III-E replay: a seed logged by a 4-worker campaign
  // regenerates the very same mutant the sequential loop would produce.
  FuzzOptions Opts = twoBugOptions(200);
  FuzzerLoop Seq(Opts);
  Seq.loadModule(parseOk(TwoBugCorpus));

  CampaignEngine Engine(Opts, 4);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  ASSERT_GT(Engine.bugs().size(), 0u);
  uint64_t Seed = Engine.bugs().front().MutantSeed;
  EXPECT_EQ(printModule(*Engine.makeMutant(Seed)),
            printModule(*Seq.makeMutant(Seed)));
}

TEST(CampaignTest, TimeLimitedParallelRunTerminates) {
  FuzzOptions Opts = twoBugOptions(0);
  Opts.TimeLimitSeconds = 0.2;
  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Engine.run();
  EXPECT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_GT(S.MutantsGenerated, 0u);
  // Bugs (if any) come out sorted by reproducer seed.
  for (size_t I = 1; I < Engine.bugs().size(); ++I)
    EXPECT_LE(Engine.bugs()[I - 1].MutantSeed, Engine.bugs()[I].MutantSeed);
}

TEST(CampaignTest, MoreWorkersThanIterations) {
  // 3 iterations on 8 requested workers: no idle shards, same results.
  FuzzOptions Opts = twoBugOptions(3);
  FuzzerLoop Seq(Opts);
  Seq.loadModule(parseOk(TwoBugCorpus));
  Seq.run();

  CampaignEngine Engine(Opts, 8);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  expectSameCounters(Seq.stats(), Engine.stats());
  ASSERT_EQ(Seq.bugs().size(), Engine.bugs().size());
}

TEST(CampaignTest, ProgressReporterFires) {
  FuzzOptions Opts = twoBugOptions(0);
  Opts.TimeLimitSeconds = 0.3;
  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));
  std::atomic<unsigned> Calls{0};
  Engine.setProgress(0.05, [&](const CampaignProgress &P) {
    EXPECT_EQ(P.Workers, 2u);
    ++Calls;
  });
  Engine.run();
  EXPECT_GT(Calls.load(), 0u);
}

//===----------------------------------------------------------------------===//
// Telemetry: stage-time accounting and the merged run report.
//===----------------------------------------------------------------------===//

TEST(CampaignTest, StageTimeSumInvariantHolds) {
  // The overhead bucket makes stage accounting exhaustive: mutate +
  // optimize + verify + overhead equals the loop's wall time (exactly,
  // modulo float rounding — every unattributed moment lands in overhead
  // by construction).
  FuzzOptions Opts = twoBugOptions(100);
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();
  double Staged = S.MutateSeconds + S.OptimizeSeconds + S.VerifySeconds +
                  S.OverheadSeconds;
  EXPECT_GT(S.OverheadSeconds, 0.0);
  EXPECT_NEAR(Staged, S.TotalSeconds, 1e-6 * std::max(1.0, S.TotalSeconds));
  EXPECT_DOUBLE_EQ(S.WorkerSeconds, S.TotalSeconds);

  // Parallel: the invariant's denominator is the summed worker wall time,
  // not the engine wall clock (which is ~J times smaller).
  CampaignEngine Engine(Opts, 4);
  Engine.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &PS = Engine.run();
  double PStaged = PS.MutateSeconds + PS.OptimizeSeconds + PS.VerifySeconds +
                   PS.OverheadSeconds;
  EXPECT_NEAR(PStaged, PS.WorkerSeconds,
              1e-6 * std::max(1.0, PS.WorkerSeconds));

  // Time-limited (dynamic) mode: workers never call run(), the engine
  // measures thread wall time itself; the invariant must still hold.
  FuzzOptions Dyn = twoBugOptions(0);
  Dyn.TimeLimitSeconds = 0.2;
  CampaignEngine DynEngine(Dyn, 2);
  DynEngine.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &DS = DynEngine.run();
  ASSERT_GT(DS.MutantsGenerated, 0u);
  double DStaged = DS.MutateSeconds + DS.OptimizeSeconds + DS.VerifySeconds +
                   DS.OverheadSeconds;
  EXPECT_GT(DS.WorkerSeconds, 0.0);
  EXPECT_NEAR(DStaged, DS.WorkerSeconds,
              1e-6 * std::max(1.0, DS.WorkerSeconds));
}

TEST(CampaignTest, RegistryBreakdownsMatchSummaryCounters) {
  FuzzOptions Opts = twoBugOptions(300);
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();
  const StatRegistry &R = Loop.registry();

  // Per-family applied counts sum to the loop's MutationsApplied.
  uint64_t FamilyApplied = 0, Verdicts = 0;
  R.forEachCounter(Volatility::Deterministic,
                   [&](const std::string &Name, uint64_t V) {
                     if (Name.rfind("mutation.", 0) == 0 &&
                         Name.size() > 8 &&
                         Name.compare(Name.size() - 8, 8, ".applied") == 0)
                       FamilyApplied += V;
                     if (Name.rfind("tv.verdict.", 0) == 0)
                       Verdicts += V;
                   });
  EXPECT_EQ(FamilyApplied, S.MutationsApplied);
  // Every established verdict (cache hits included) is attributed.
  EXPECT_EQ(Verdicts, S.Verified);
  // Pass invocation counts exist for the configured pipeline.
  EXPECT_GT(R.counterValue("pass.instcombine.invocations"), 0u);
  EXPECT_GT(R.counterValue("bug.crash") + R.counterValue("bug.miscompile"),
            0u);
}

TEST(CampaignTest, MergedRunReportIsWorkerCountInvariant) {
  // The acceptance criterion for -stats-json: a -j4 campaign's report is
  // byte-identical to -j1 in everything except wall-times and cache
  // splits — i.e. the whole "deterministic" section matches.
  FuzzOptions Opts = twoBugOptions(200);
  auto ReportFor = [&](unsigned Jobs) {
    CampaignEngine Engine(Opts, Jobs);
    Engine.loadModule(parseOk(TwoBugCorpus));
    const FuzzStats &S = Engine.run();
    RunReportConfig RC;
    RC.Tool = "campaign_test";
    RC.Passes = Opts.Passes;
    RC.Iterations = Opts.Iterations;
    RC.BaseSeed = Opts.BaseSeed;
    RC.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    RC.Jobs = Jobs;
    RC.WallSeconds = S.TotalSeconds;
    std::ostringstream OS;
    writeRunReport(OS, RC, S, Engine.bugs(), Engine.registry());
    return OS.str();
  };
  std::string R1 = ReportFor(1), R4 = ReportFor(4);

  // Cut each report at the start of its volatile section.
  auto DeterministicPart = [](const std::string &R) {
    size_t Pos = R.find("\"volatile\"");
    EXPECT_NE(Pos, std::string::npos);
    return R.substr(0, Pos);
  };
  EXPECT_EQ(DeterministicPart(R1), DeterministicPart(R4));
  // And the reports are structurally complete.
  EXPECT_NE(R1.find("\"schema_version\": 7"), std::string::npos);
  EXPECT_NE(R1.find("\"per_pass\""), std::string::npos);
  EXPECT_NE(R1.find("\"per_family\""), std::string::npos);
  EXPECT_NE(R1.find("\"tv_verdicts\""), std::string::npos);
  EXPECT_NE(R1.find("\"p99_s\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The shared cross-worker TV verdict cache (-shared-tv-cache).
//===----------------------------------------------------------------------===//

namespace {

/// Four alpha-renamed copies of one function: a workload where the
/// text-keyed per-worker cache misses (names differ, so the printed texts
/// differ) but the canonicalized shared cache collapses all lineages onto
/// one key per structural pair.
const char *RenamedCopiesCorpus = R"(
define i8 @copy_a(i8 %x, i8 %y) {
  %s = add i8 %x, %y
  %m = and i8 %s, %x
  %r = xor i8 %m, 42
  ret i8 %r
}
define i8 @copy_b(i8 %p, i8 %q) {
  %t0 = add i8 %p, %q
  %t1 = and i8 %t0, %p
  %t2 = xor i8 %t1, 42
  ret i8 %t2
}
define i8 @copy_c(i8 %a, i8 %b) {
  %u = add i8 %a, %b
  %v = and i8 %u, %a
  %w = xor i8 %v, 42
  ret i8 %w
}
define i8 @copy_d(i8 %m, i8 %n) {
  %e = add i8 %m, %n
  %f = and i8 %e, %m
  %g = xor i8 %f, 42
  ret i8 %g
}
)";

FuzzOptions renamedCopiesOptions(bool Shared) {
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = 60;
  Opts.BaseSeed = 7;
  Opts.TV.ConcreteTrials = 8;
  // A tight conflict budget: a hard SAT query resolves Inconclusive in
  // milliseconds — hit accounting, not proof strength, is under test.
  Opts.TV.SolverConflictBudget = 2000;
  Opts.UseSharedTVCache = Shared;
  return Opts;
}

} // namespace

TEST(CampaignTest, SharedCacheHitsWhereTextKeyedCacheCannot) {
  // Same seeds, same corpus, both cache flavors: the canonical keys must
  // collapse the alpha-renamed lineages that text keys keep apart.
  auto HitsFor = [&](bool Shared) {
    CampaignEngine Engine(renamedCopiesOptions(Shared), 1);
    Engine.loadModule(parseOk(RenamedCopiesCorpus));
    const FuzzStats &S = Engine.run();
    EXPECT_GT(S.Verified + S.VerifySkipped, 0u);
    return S.TVCacheHits;
  };
  uint64_t Private = HitsFor(false), Shared = HitsFor(true);
  EXPECT_GT(Shared, Private);
}

TEST(CampaignTest, SharedCacheHitsAcrossWorkers) {
  // Under -j4 every worker queries the one process-wide cache, so verdicts
  // computed in one worker must be replayed in the others.
  FuzzOptions Opts = renamedCopiesOptions(true);
  CampaignEngine Engine(Opts, 4);
  Engine.loadModule(parseOk(RenamedCopiesCorpus));
  const FuzzStats &S = Engine.run();
  EXPECT_GT(S.TVCacheHits, 0u);
  // Every verification either hit, missed, or was uncacheable; the split
  // must stay internally consistent.
  EXPECT_LE(S.TVCacheHits + S.TVCacheMisses, S.Verified);
}

TEST(CampaignTest, SharedCacheReportIsWorkerCountInvariant) {
  // The tentpole acceptance criterion: with the shared cache on, a -j4
  // campaign's deterministic report section is byte-identical to -j1 even
  // though workers race on the cache — verdicts are a pure function of the
  // canonical key, so a hit replays what a fresh computation would return.
  FuzzOptions Opts = twoBugOptions(200);
  Opts.UseSharedTVCache = true;
  auto ReportFor = [&](unsigned Jobs) {
    CampaignEngine Engine(Opts, Jobs);
    Engine.loadModule(parseOk(TwoBugCorpus));
    const FuzzStats &S = Engine.run();
    RunReportConfig RC;
    RC.Tool = "campaign_test";
    RC.Passes = Opts.Passes;
    RC.Iterations = Opts.Iterations;
    RC.BaseSeed = Opts.BaseSeed;
    RC.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
    RC.Jobs = Jobs;
    RC.WallSeconds = S.TotalSeconds;
    std::ostringstream OS;
    writeRunReport(OS, RC, S, Engine.bugs(), Engine.registry());
    return OS.str();
  };
  std::string R1 = ReportFor(1), R4 = ReportFor(4);
  auto DeterministicPart = [](const std::string &R) {
    size_t Pos = R.find("\"volatile\"");
    EXPECT_NE(Pos, std::string::npos);
    return R.substr(0, Pos);
  };
  EXPECT_EQ(DeterministicPart(R1), DeterministicPart(R4));
}

TEST(CampaignTest, SharedCacheBugSetMatchesSequentialRun) {
  // Bug records (seed, function, detail, mutant IR) must agree between
  // -j1 and -j4 shared-cache runs, record for record.
  FuzzOptions Opts = twoBugOptions(200);
  Opts.UseSharedTVCache = true;
  CampaignEngine E1(Opts, 1), E4(Opts, 4);
  E1.loadModule(parseOk(TwoBugCorpus));
  E4.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S1 = E1.run();
  const FuzzStats &S4 = E4.run();
  expectSameCounters(S1, S4);
  ASSERT_EQ(E1.bugs().size(), E4.bugs().size());
  for (size_t I = 0; I != E1.bugs().size(); ++I)
    expectSameRecord(E1.bugs()[I], E4.bugs()[I]);
  EXPECT_GT(E1.bugs().size(), 0u);
}
