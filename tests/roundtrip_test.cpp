//===- tests/roundtrip_test.cpp - Parser/printer round-trip over mutants ----===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The §III-E save/replay workflow only works if every artifact the fuzzer
/// writes can be read back: saved mutants — which exercise far weirder IR
/// than hand-written tests — must survive parse -> print -> parse -> print
/// as a fixpoint, for every mutant of a real campaign.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// Mixed corpus: integers, vectors, memory, control flow, intrinsics —
/// every printer feature a mutant can contain.
const char *Corpus = R"(
declare void @sink(ptr)
declare i32 @llvm.smax.i32(i32, i32)

define i32 @ints(i32 %x, i32 %y) {
  %a = add nsw i32 %x, %y
  %b = mul i32 %a, 3
  %c = icmp slt i32 %b, %y
  %r = select i1 %c, i32 %b, i32 %y
  ret i32 %r
}

define <4 x i8> @vecs(<4 x i8> %v, i8 %s) {
  %i = insertelement <4 x i8> %v, i8 %s, i32 2
  %w = shufflevector <4 x i8> %i, <4 x i8> %v, <4 x i32> <i32 0, i32 5, i32 2, i32 7>
  %r = add <4 x i8> %w, <i8 1, i8 2, i8 3, i8 4>
  ret <4 x i8> %r
}

define i32 @mem(i32 %x) {
  %p = alloca i32, align 4
  store i32 %x, ptr %p, align 4
  call void @sink(ptr %p)
  %v = load i32, ptr %p, align 4
  ret i32 %v
}

define i32 @flow(i32 %x) {
entry:
  %c = icmp eq i32 %x, 0
  br i1 %c, label %zero, label %other
zero:
  br label %join
other:
  %m = call i32 @llvm.smax.i32(i32 %x, i32 7)
  br label %join
join:
  %r = phi i32 [ 1, %zero ], [ %m, %other ]
  ret i32 %r
}
)";

} // namespace

TEST(RoundTripTest, SavedMutantsRoundTripThroughParserAndPrinter) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "amr_roundtrip";
  fs::remove_all(Dir);

  FuzzOptions Opts;
  Opts.Passes = "instcombine,dce";
  Opts.Iterations = 30;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 4; // verification is not what this test checks
  Opts.SaveDir = Dir.string();
  Opts.SaveAll = true;
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(Corpus));
  const FuzzStats &S = Loop.run();
  ASSERT_TRUE(Loop.saveDirError().empty()) << Loop.saveDirError();
  ASSERT_EQ(S.MutantsSaved, S.MutantsGenerated);
  ASSERT_GT(S.MutantsSaved, 0u);

  unsigned Checked = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    std::ifstream In(E.path());
    std::stringstream SS;
    SS << In.rdbuf();

    std::string Err;
    auto M1 = parseModule(SS.str(), Err);
    ASSERT_NE(M1, nullptr) << E.path() << ": " << Err;
    std::string P1 = printModule(*M1);
    auto M2 = parseModule(P1, Err);
    ASSERT_NE(M2, nullptr) << E.path() << ": reparse: " << Err;
    // Fixpoint: printing the reparse reproduces the first print exactly.
    EXPECT_EQ(printModule(*M2), P1) << E.path();
    ++Checked;
  }
  EXPECT_EQ(Checked, S.MutantsSaved);
  fs::remove_all(Dir);
}
