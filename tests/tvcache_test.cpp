//===- tests/tvcache_test.cpp - TV verdict cache unit tests -----------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the bounded LRU memo of refinement verdicts: eviction
/// order, recency refresh, hit/miss accounting, and the cacheability rules
/// of makeKey (pairs depending on module context must not be memoized).
///
//===----------------------------------------------------------------------===//

#include "tv/TVCache.h"

#include "parser/Parser.h"
#include "parser/Printer.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

TVResult verdict(TVVerdict V, const std::string &Detail = "") {
  TVResult R;
  R.Verdict = V;
  R.Detail = Detail;
  return R;
}

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

} // namespace

TEST(TVCacheTest, LookupReturnsInsertedVerdict) {
  TVCache C(8);
  EXPECT_EQ(C.lookup("k1"), nullptr);
  C.insert("k1", verdict(TVVerdict::Correct, "proved"));
  const TVResult *Hit = C.lookup("k1");
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Verdict, TVVerdict::Correct);
  EXPECT_EQ(Hit->Detail, "proved");
  EXPECT_EQ(C.size(), 1u);
  EXPECT_EQ(C.stats().Hits, 1u);
  EXPECT_EQ(C.stats().Misses, 1u);
}

TEST(TVCacheTest, EvictsLeastRecentlyUsed) {
  TVCache C(2);
  EXPECT_FALSE(C.insert("a", verdict(TVVerdict::Correct)));
  EXPECT_FALSE(C.insert("b", verdict(TVVerdict::Incorrect)));
  // Capacity reached: inserting c evicts a (the oldest).
  EXPECT_TRUE(C.insert("c", verdict(TVVerdict::Inconclusive)));
  EXPECT_EQ(C.size(), 2u);
  EXPECT_EQ(C.lookup("a"), nullptr);
  EXPECT_NE(C.lookup("b"), nullptr);
  EXPECT_NE(C.lookup("c"), nullptr);
  EXPECT_EQ(C.stats().Evictions, 1u);
}

TEST(TVCacheTest, LookupRefreshesRecency) {
  TVCache C(2);
  C.insert("a", verdict(TVVerdict::Correct));
  C.insert("b", verdict(TVVerdict::Correct));
  // Touch a: b becomes the LRU victim.
  EXPECT_NE(C.lookup("a"), nullptr);
  C.insert("c", verdict(TVVerdict::Correct));
  EXPECT_NE(C.lookup("a"), nullptr);
  EXPECT_EQ(C.lookup("b"), nullptr);
  EXPECT_NE(C.lookup("c"), nullptr);
}

TEST(TVCacheTest, DuplicateInsertIsNoOp) {
  TVCache C(2);
  C.insert("a", verdict(TVVerdict::Correct, "first"));
  EXPECT_FALSE(C.insert("a", verdict(TVVerdict::Incorrect, "second")));
  EXPECT_EQ(C.size(), 1u);
  const TVResult *Hit = C.lookup("a");
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Detail, "first");
}

TEST(TVCacheTest, ZeroCapacityIsClampedToOne) {
  TVCache C(0);
  EXPECT_EQ(C.capacity(), 1u);
  C.insert("a", verdict(TVVerdict::Correct));
  EXPECT_TRUE(C.insert("b", verdict(TVVerdict::Correct)));
  EXPECT_EQ(C.size(), 1u);
}

TEST(TVCacheTest, KeyDependsOnFunctionText) {
  auto M = parseOk(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}
define i32 @g(i32 %x) {
  %a = add i32 %x, 2
  ret i32 %a
}
)");
  Function *F = M->getFunction("f"), *G = M->getFunction("g");
  TVOptions Opts;
  std::string FF = TVCache::makeKey(*F, *F, Opts);
  std::string FG = TVCache::makeKey(*F, *G, Opts);
  std::string GF = TVCache::makeKey(*G, *F, Opts);
  ASSERT_FALSE(FF.empty());
  EXPECT_NE(FF, FG);
  EXPECT_NE(FG, GF); // direction matters: refinement is not symmetric
  // Identical printed text (even across module clones) keys identically.
  auto M2 = parseOk(printModule(*M));
  EXPECT_EQ(TVCache::makeKey(*M2->getFunction("f"), *M2->getFunction("g"),
                             Opts),
            FG);
  EXPECT_EQ(TVCache::structuralHash(*F),
            TVCache::structuralHash(*M2->getFunction("f")));
}

TEST(TVCacheTest, KeyDependsOnOptions) {
  auto M = parseOk(R"(
define i32 @f(i32 %x) {
  ret i32 %x
}
)");
  Function *F = M->getFunction("f");
  TVOptions A, B;
  B.ConcreteTrials = A.ConcreteTrials + 1;
  EXPECT_NE(TVCache::makeKey(*F, *F, A), TVCache::makeKey(*F, *F, B));
  TVOptions D;
  D.SolverConflictBudget = A.SolverConflictBudget + 1;
  EXPECT_NE(TVCache::makeKey(*F, *F, A), TVCache::makeKey(*F, *F, D));
}

TEST(TVCacheTest, CallsIntoDefinedFunctionsAreUncacheable) {
  // The interpreter executes defined callee bodies from the surrounding
  // module, which the mutator rewrites independently — such a pair's
  // verdict is not a function of the pair's own text, so it must never be
  // memoized. Declarations are modeled from the callee name and arguments
  // alone and stay cacheable.
  auto M = parseOk(R"(
declare i32 @ext(i32)

define i32 @callee(i32 %x) {
  ret i32 %x
}
define i32 @calls_defined(i32 %x) {
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}
define i32 @calls_declared(i32 %x) {
  %r = call i32 @ext(i32 %x)
  ret i32 %r
}
)");
  TVOptions Opts;
  Function *Defined = M->getFunction("calls_defined");
  Function *Declared = M->getFunction("calls_declared");
  Function *Leaf = M->getFunction("callee");
  EXPECT_TRUE(TVCache::makeKey(*Defined, *Defined, Opts).empty());
  EXPECT_TRUE(TVCache::makeKey(*Leaf, *Defined, Opts).empty());
  EXPECT_FALSE(TVCache::makeKey(*Declared, *Declared, Opts).empty());
  EXPECT_FALSE(TVCache::makeKey(*Leaf, *Leaf, Opts).empty());
}
