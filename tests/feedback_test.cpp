//===- tests/feedback_test.cpp - Feedback-directed scheduling tests ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the feedback subsystem: coverage-bitmap algebra, the
/// epoch-schedule formulas, feedback-state JSON round-trips, corpus
/// distillation idempotence, and the campaign-level guarantees — the
/// -j1 == -jN identity of the deterministic report under -feedback=on,
/// the blind-equivalence of -feedback=off, and the checkpoint/resume
/// byte-equality of an interrupted feedback campaign.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/Checkpoint.h"
#include "core/Feedback.h"
#include "core/RunReport.h"
#include "corpus/Distill.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "support/RandomGenerator.h"

#include <algorithm>
#include <filesystem>
#include <gtest/gtest.h>
#include <sstream>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// Same corpus the campaign tests fuzz: surfaces PR52884/PR50693 when the
/// matching injected defects are enabled.
const char *TwoBugCorpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

FuzzOptions feedbackOptions(uint64_t Iterations, unsigned EpochLength) {
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = Iterations;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  Opts.Bugs.enable(BugId::PR52884);
  Opts.Bugs.enable(BugId::PR50693);
  Opts.Feedback.Enabled = true;
  Opts.Feedback.EpochLength = EpochLength;
  return Opts;
}

struct ScratchDir {
  std::string Path;
  explicit ScratchDir(const std::string &Tag) {
    Path = ::testing::TempDir() + "amr_feedback_" + Tag;
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
};

/// The byte-comparable deterministic prefix of the engine's run report.
std::string deterministicReportPart(const CampaignEngine &Engine,
                                    const FuzzOptions &Opts) {
  RunReportConfig RC;
  RC.Tool = "feedback_test";
  RC.Passes = Opts.Passes;
  RC.Iterations = Opts.Iterations;
  RC.BaseSeed = Opts.BaseSeed;
  RC.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
  RC.FeedbackOn = Opts.Feedback.Enabled;
  RC.FeedbackEpochLength = Opts.Feedback.EpochLength;
  std::ostringstream OS;
  writeRunReport(OS, RC, Engine.stats(), Engine.bugs(), Engine.registry());
  std::string R = OS.str();
  size_t Pos = R.find("\"volatile\"");
  EXPECT_NE(Pos, std::string::npos);
  return R.substr(0, Pos);
}

CoverageBitmap bitmapOf(std::initializer_list<unsigned> Bits) {
  CoverageBitmap B;
  for (unsigned Bit : Bits)
    B.set(Bit);
  return B;
}

} // namespace

//===----------------------------------------------------------------------===//
// Coverage-bitmap algebra.
//===----------------------------------------------------------------------===//

TEST(FeedbackTest, BitmapBasics) {
  CoverageBitmap B;
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(B.popcount(), 0u);
  B.set(0);
  B.set((unsigned)RuleID::NumRules + CoverageBitmap::VB_Correct);
  EXPECT_FALSE(B.empty());
  EXPECT_EQ(B.popcount(), 2u);
  EXPECT_TRUE(B.test(0));
  EXPECT_FALSE(B.test(1));

  CoverageBitmap C = bitmapOf({0});
  EXPECT_TRUE(C.subsetOf(B));
  EXPECT_FALSE(B.subsetOf(C));
  EXPECT_EQ(B.newBits(C), 1u);
  EXPECT_EQ(C.newBits(B), 0u);

  C.orWith(B);
  EXPECT_TRUE(C == B);
}

TEST(FeedbackTest, MergeIsCommutativeAndAssociative) {
  FeedbackMap A, B, C;
  A.addIteration(bitmapOf({1, 5}), {"f"}, {MutationKind::Arith});
  B.addIteration(bitmapOf({2, 5}), {"g"}, {MutationKind::Use});
  C.addIteration(bitmapOf({3}), {"f", "g"}, {MutationKind::Move});

  FeedbackMap AB = A;
  AB.merge(B);
  AB.merge(C);
  FeedbackMap CB = C;
  CB.merge(B);
  CB.merge(A);
  EXPECT_TRUE(AB == CB);
  EXPECT_EQ(AB.Global.popcount(), 4u);
  EXPECT_EQ(AB.PerFunction.at("f").popcount(), 3u);
}

//===----------------------------------------------------------------------===//
// Schedule formulas.
//===----------------------------------------------------------------------===//

TEST(FeedbackTest, EnergyDecaysOnDryEpochsAndResetsOnNovelty) {
  ScheduleState S;
  EXPECT_EQ(S.energyFor("f"), ScheduleState::MaxEnergy);

  FeedbackMap Prev, Merged;
  Merged.addIteration(bitmapOf({1}), {"f"}, {MutationKind::Arith});
  // Novel epoch: full energy.
  S.update(Prev, Merged);
  EXPECT_EQ(S.energyFor("f"), ScheduleState::MaxEnergy);

  // Dry epochs halve the energy down to the floor: 8 -> 4 -> 2 -> 1 -> 1.
  Prev = Merged;
  S.update(Prev, Merged);
  EXPECT_EQ(S.energyFor("f"), 4u);
  S.update(Prev, Merged);
  EXPECT_EQ(S.energyFor("f"), 2u);
  S.update(Prev, Merged);
  EXPECT_EQ(S.energyFor("f"), 1u);
  S.update(Prev, Merged);
  EXPECT_EQ(S.energyFor("f"), ScheduleState::MinEnergy);

  // A novel bit resets the streak and the energy.
  FeedbackMap Novel = Merged;
  Novel.addIteration(bitmapOf({9}), {"f"}, {MutationKind::Arith});
  EXPECT_GT(S.update(Prev, Novel), 0u);
  EXPECT_EQ(S.energyFor("f"), ScheduleState::MaxEnergy);
}

TEST(FeedbackTest, FamilyWeightsDoubleAndHalveWithinClamps) {
  ScheduleState S;
  const size_t Arith = (size_t)MutationKind::Arith;
  const size_t Use = (size_t)MutationKind::Use;
  EXPECT_EQ(S.FamilyWeights[Arith], ScheduleState::InitWeight);

  FeedbackMap Prev, Merged;
  Merged.addIteration(bitmapOf({1}), {"f"}, {MutationKind::Arith});
  S.update(Prev, Merged);
  EXPECT_EQ(S.FamilyWeights[Arith], 16u);
  EXPECT_EQ(S.FamilyWeights[Use], 4u);

  // Saturation: repeated novel epochs stay at the cap, repeated dry ones
  // at the floor.
  Prev = Merged;
  for (int I = 0; I != 4; ++I)
    S.update(Prev, Merged);
  EXPECT_EQ(S.FamilyWeights[Arith], ScheduleState::MinWeight);
  EXPECT_EQ(S.FamilyWeights[Use], ScheduleState::MinWeight);
}

TEST(FeedbackTest, EnergyGateIsDeterministicAndConsumesNoRNG) {
  // Null schedule (blind) and full energy always mutate.
  EXPECT_TRUE(scheduleAllowsMutation(nullptr, "f", 123));
  ScheduleState S;
  EXPECT_TRUE(scheduleAllowsMutation(&S, "f", 123));

  // A reduced-energy function is gated by a pure hash of (seed, name):
  // the same inputs always give the same answer, and energy E admits
  // roughly E/8 of the seeds.
  S.Energy["f"] = 4;
  unsigned Allowed = 0;
  for (uint64_t Seed = 0; Seed != 1024; ++Seed) {
    bool A = scheduleAllowsMutation(&S, "f", Seed);
    EXPECT_EQ(A, scheduleAllowsMutation(&S, "f", Seed));
    Allowed += A;
  }
  EXPECT_GT(Allowed, 1024u / 4);
  EXPECT_LT(Allowed, 3 * 1024u / 4);
}

//===----------------------------------------------------------------------===//
// JSON round-trips (the checkpoint payload).
//===----------------------------------------------------------------------===//

TEST(FeedbackTest, FeedbackCheckpointRoundTripsByteIdentically) {
  ScratchDir Dir("roundtrip");
  FeedbackCheckpoint Out;
  Out.NextOffset = 512;
  Out.Global.addIteration(bitmapOf({0, 7, 54}), {"f", "g"},
                          {MutationKind::Arith, MutationKind::Shuffle});
  Out.Schedule.Energy["f"] = 2;
  Out.Schedule.Dry["f"] = 2;
  Out.Schedule.FamilyWeights[(size_t)MutationKind::Arith] = 16;

  std::string Err;
  ASSERT_TRUE(writeFeedbackCheckpoint(Dir.Path, Out, Err)) << Err;
  FeedbackCheckpoint In;
  ASSERT_TRUE(readFeedbackCheckpoint(Dir.Path, In, Err)) << Err;
  EXPECT_EQ(In.NextOffset, Out.NextOffset);
  EXPECT_TRUE(In.Global == Out.Global);
  EXPECT_TRUE(In.Schedule == Out.Schedule);

  // Re-serializing the read-back state writes the same bytes.
  std::ostringstream S1, S2;
  Out.Global.writeJSON(S1);
  In.Global.writeJSON(S2);
  EXPECT_EQ(S1.str(), S2.str());
}

//===----------------------------------------------------------------------===//
// Corpus distillation.
//===----------------------------------------------------------------------===//

TEST(FeedbackTest, DistillKeepsACoverAndDropsSubsumedSeeds) {
  std::vector<DistillItem> Items = {
      {"small", {0b0011}},
      {"big", {0b0111}},
      {"disjoint", {0b1000}},
      {"empty", {0}},
  };
  DistillResult R = distillCover(Items);
  // "big" subsumes "small"; "disjoint" adds a bit; "empty" contributes
  // nothing.
  ASSERT_EQ(R.Kept.size(), 2u);
  EXPECT_EQ(R.Kept[0], "big");
  EXPECT_EQ(R.Kept[1], "disjoint");
  ASSERT_EQ(R.Dropped.size(), 2u);
}

TEST(FeedbackTest, DistillIsIdempotent) {
  std::vector<DistillItem> Items = {
      {"a", {0b101}}, {"b", {0b011}}, {"c", {0b110}}, {"d", {0b111}},
      {"e", {0b1000, 0b1}},
  };
  DistillResult Once = distillCover(Items);
  std::vector<DistillItem> Surviving;
  for (const DistillItem &It : Items)
    if (std::find(Once.Kept.begin(), Once.Kept.end(), It.Name) !=
        Once.Kept.end())
      Surviving.push_back(It);
  DistillResult Twice = distillCover(Surviving);
  EXPECT_EQ(Twice.Kept, Once.Kept);
  EXPECT_TRUE(Twice.Dropped.empty());

  // Input order does not matter: the rank order is total.
  std::reverse(Items.begin(), Items.end());
  EXPECT_EQ(distillCover(Items).Kept, Once.Kept);
}

//===----------------------------------------------------------------------===//
// Satellite: RandomGenerator zero-bound rejection (release-mode UB fix).
//===----------------------------------------------------------------------===//

TEST(FeedbackTest, MutatorWithNoBudgetOrKindsIsACleanNoOp) {
  // Empty family set / zero budget used to reach RNG.below(0) — a divide
  // by zero under NDEBUG. Now it returns before the first draw.
  auto M = parseOk(TwoBugCorpus);
  Function *F = M->getFunction("smax_offset");
  ASSERT_NE(F, nullptr);
  OriginalFunctionInfo Info(*F);
  RandomGenerator RNG(42);

  MutationOptions MO;
  MO.MaxMutationsPerFunction = 0;
  Mutator Mut(RNG, MO);
  MutantInfo MI(*F, Info);
  EXPECT_TRUE(Mut.mutateFunction(MI).empty());

  MutationOptions NoKinds;
  NoKinds.EnabledKinds.clear();
  Mutator Mut2(RNG, NoKinds);
  MutantInfo MI2(*F, Info);
  EXPECT_TRUE(Mut2.mutateFunction(MI2).empty());

#ifdef NDEBUG
  // The fail-soft path itself (assert-compiled-out builds only).
  RandomGenerator R2(7);
  EXPECT_EQ(R2.below(0), 0u);
#endif
}

//===----------------------------------------------------------------------===//
// Campaign-level guarantees.
//===----------------------------------------------------------------------===//

TEST(FeedbackTest, FeedbackReportIsWorkerCountInvariant) {
  // The tentpole guarantee: under -feedback=on the deterministic report
  // section — bug list, coverage counters, final weights — is
  // byte-identical for every worker count.
  FuzzOptions Opts = feedbackOptions(120, 16);
  std::string Reports[3];
  unsigned BugCounts[3] = {};
  unsigned Jobs[3] = {1, 2, 4};
  for (int I = 0; I != 3; ++I) {
    CampaignEngine Engine(Opts, Jobs[I]);
    Engine.loadModule(parseOk(TwoBugCorpus));
    Engine.run();
    ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
    Reports[I] = deterministicReportPart(Engine, Opts);
    BugCounts[I] = (unsigned)Engine.bugs().size();
  }
  EXPECT_GT(BugCounts[0], 0u);
  EXPECT_EQ(Reports[0], Reports[1]);
  EXPECT_EQ(Reports[0], Reports[2]);
}

TEST(FeedbackTest, FeedbackOffReproducesBlindRunExactly) {
  // -feedback=off must be bit-for-bit the blind engine: same bugs, same
  // deterministic counters, no feedback counters at all.
  FuzzOptions Blind = feedbackOptions(80, 16);
  Blind.Feedback.Enabled = false;
  FuzzOptions Off = Blind;

  CampaignEngine A(Blind, 2);
  A.loadModule(parseOk(TwoBugCorpus));
  A.run();
  CampaignEngine B(Off, 2);
  B.loadModule(parseOk(TwoBugCorpus));
  B.run();
  EXPECT_EQ(deterministicReportPart(A, Blind),
            deterministicReportPart(B, Off));
  EXPECT_EQ(A.registry().counterValue("feedback.epochs"), 0u);
}

TEST(FeedbackTest, FeedbackCampaignResumesByteIdentically) {
  // Checkpoint/resume round-trip: an interrupted feedback campaign,
  // resumed, reports byte-identically to an uninterrupted one — the
  // coverage maps and schedule survive through feedback.json.
  const uint64_t Iterations = 96;
  ScratchDir Dir("resume");

  FuzzOptions Plain = feedbackOptions(Iterations, 16);
  CampaignEngine Ref(Plain, 2);
  Ref.loadModule(parseOk(TwoBugCorpus));
  Ref.run();
  ASSERT_TRUE(Ref.configError().empty()) << Ref.configError();
  std::string RefReport = deterministicReportPart(Ref, Plain);
  ASSERT_GT(Ref.bugs().size(), 0u);

  FuzzOptions Opts = feedbackOptions(Iterations, 16);
  Opts.Survival.CheckpointDir = Dir.Path;
  Opts.Survival.CheckpointInterval = 1;
  CampaignEngine Leg1(Opts, 2);
  Leg1.loadModule(parseOk(TwoBugCorpus));
  Leg1.stopAfterIterations(40);
  Leg1.run();
  ASSERT_TRUE(Leg1.configError().empty()) << Leg1.configError();
  ASSERT_TRUE(Leg1.interrupted());
  ASSERT_LT(Leg1.stats().MutantsGenerated, Iterations);

  FuzzOptions ResumeOpts = Opts;
  ResumeOpts.Survival.Resume = true;
  CampaignEngine Leg2(ResumeOpts, 2);
  Leg2.loadModule(parseOk(TwoBugCorpus));
  Leg2.run();
  ASSERT_TRUE(Leg2.configError().empty()) << Leg2.configError();
  EXPECT_FALSE(Leg2.interrupted());
  EXPECT_EQ(deterministicReportPart(Leg2, ResumeOpts), RefReport);
  EXPECT_TRUE(Leg2.feedback() == Ref.feedback());
  EXPECT_TRUE(Leg2.schedule() == Ref.schedule());
}

TEST(FeedbackTest, FeedbackRejectsIncoherentConfigs) {
  // Time-limited feedback: no fixed seed range, no epochs.
  FuzzOptions TimeLimited;
  TimeLimited.Passes = "instcombine";
  TimeLimited.Iterations = 0;
  TimeLimited.TimeLimitSeconds = 1;
  TimeLimited.Feedback.Enabled = true;
  CampaignEngine E1(TimeLimited, 1);
  E1.loadModule(parseOk(TwoBugCorpus));
  E1.run();
  EXPECT_NE(E1.configError().find("-feedback"), std::string::npos)
      << E1.configError();

  // Checkpointing a time-limited campaign (the satellite bugfix): there
  // is no reproducible position to record.
  FuzzOptions CkptTimed;
  CkptTimed.Passes = "instcombine";
  CkptTimed.Iterations = 0;
  CkptTimed.TimeLimitSeconds = 1;
  CkptTimed.Survival.CheckpointDir = ::testing::TempDir() + "amr_fb_nock";
  CampaignEngine E2(CkptTimed, 1);
  E2.loadModule(parseOk(TwoBugCorpus));
  E2.run();
  EXPECT_NE(E2.configError().find("iteration-bounded"), std::string::npos)
      << E2.configError();
}
