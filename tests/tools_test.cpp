//===- tests/tools_test.cpp - CLI tool integration tests --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Drives the built command-line tools end to end, including the full
/// discrete pipeline (mutate -> opt -> tv through real files), the paper's
/// §III-E save/replay workflow, and crash exit codes.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace alive;

namespace {

/// Tools live next to the test binary's sibling directory.
std::string tool(const std::string &Name) {
  return "../src/tools/" + Name;
}

int runCmd(const std::string &Cmd) {
  int St = std::system((Cmd + " >/dev/null 2>&1").c_str());
  return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
}

std::string TmpDir;

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  ASSERT_TRUE(Out.good());
  Out << Text;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

class ToolsTest : public ::testing::Test {
protected:
  void SetUp() override {
    TmpDir = ::testing::TempDir() + "amr_tools";
    ASSERT_EQ(runCmd("mkdir -p " + TmpDir), 0);
    writeFile(TmpDir + "/in.ll", R"(
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
)");
  }
};

} // namespace

TEST_F(ToolsTest, AliveMutateRunsClean) {
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=30 " + TmpDir + "/in.ll"), 0);
}

TEST_F(ToolsTest, AliveMutateFindsInjectedBugs) {
  // Exit code 2 signals discovered bugs.
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=200 -inject-bugs -seed=7 " +
                   TmpDir + "/in.ll"),
            2);
}

TEST_F(ToolsTest, AliveMutateRejectsInvalidPipeline) {
  // Exit code 1, in every build mode — the old assert-only validation
  // let an NDEBUG build silently fuzz an empty pipeline.
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=30 -passes=no-such-pass " +
                   TmpDir + "/in.ll"),
            1);
}

TEST_F(ToolsTest, AliveMutateRejectsUnboundedCampaign) {
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=0 " + TmpDir + "/in.ll"), 1);
}

TEST_F(ToolsTest, AliveMutateParallelFindsInjectedBugs) {
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=200 -j=4 -inject-bugs "
                                          "-seed=7 " +
                   TmpDir + "/in.ll"),
            2);
}

TEST_F(ToolsTest, AliveMutateParallelReportMatchesSequential) {
  // The -j 4 stats + bug report is byte-identical to -j 1 apart from the
  // wall-clock and worker-count lines.
  std::string Base =
      " -n=200 -inject-bugs -seed=7 -report " + TmpDir + "/in.ll";
  ASSERT_EQ(runCmd("(" + tool("alive-mutate") + " -j=1" + Base + " > " +
                   TmpDir + "/seq.txt)"),
            2);
  ASSERT_EQ(runCmd("(" + tool("alive-mutate") + " -j=4" + Base + " > " +
                   TmpDir + "/par.txt)"),
            2);
  auto Strip = [](const std::string &Text) {
    std::stringstream In(Text), Out;
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("time:") == std::string::npos &&
          Line.find("worker(s)") == std::string::npos &&
          // Hit/miss splits depend on each worker's private cache history.
          Line.find("tv-cache:") == std::string::npos)
        Out << Line << '\n';
    return Out.str();
  };
  std::string Seq = Strip(readFile(TmpDir + "/seq.txt"));
  std::string Par = Strip(readFile(TmpDir + "/par.txt"));
  EXPECT_FALSE(Seq.empty());
  EXPECT_EQ(Seq, Par);
}

TEST_F(ToolsTest, DiscretePipelineRoundTrips) {
  std::string In = TmpDir + "/in.ll";
  std::string Mut = TmpDir + "/mutant.ll";
  std::string Opt = TmpDir + "/opt.ll";
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=5 " + In + " " + Mut), 0);
  // The mutant file parses and differs from the input.
  std::string Err;
  auto M = parseModuleFile(Mut, Err);
  ASSERT_NE(M, nullptr) << Err;
  ASSERT_EQ(runCmd(tool("amut-opt") + " -passes=O2 " + Mut + " " + Opt), 0);
  auto O = parseModuleFile(Opt, Err);
  ASSERT_NE(O, nullptr) << Err;
  // The optimized mutant refines the mutant.
  EXPECT_EQ(runCmd(tool("amut-tv") + " " + Mut + " " + Opt), 0);
}

TEST_F(ToolsTest, MutantRegenerationIsStableAcrossProcesses) {
  // §III-E: the same seed regenerates the same mutant, even in separate
  // tool invocations.
  std::string In = TmpDir + "/in.ll";
  std::string A = TmpDir + "/a.ll", B = TmpDir + "/b.ll";
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=99 " + In + " " + A), 0);
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=99 " + In + " " + B), 0);
  EXPECT_EQ(readFile(A), readFile(B));
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=100 " + In + " " + B), 0);
  EXPECT_NE(readFile(A), readFile(B));
}

TEST_F(ToolsTest, AmutTvDetectsMiscompile) {
  writeFile(TmpDir + "/src.ll", "define i32 @f(i32 %x) {\n"
                                "  %a = add i32 %x, 1\n  ret i32 %a\n}\n");
  writeFile(TmpDir + "/tgt.ll", "define i32 @f(i32 %x) {\n"
                                "  %a = add i32 %x, 2\n  ret i32 %a\n}\n");
  EXPECT_EQ(runCmd(tool("amut-tv") + " " + TmpDir + "/src.ll " + TmpDir +
                   "/tgt.ll"),
            2);
}

TEST_F(ToolsTest, AmutOptCrashExitCode) {
  // A direct trigger for seeded crash 64687 through the standalone opt
  // tool: non-power-of-two alignment + -inject-bugs => SIGABRT-style 134.
  writeFile(TmpDir + "/crash.ll",
            "define i8 @f(ptr dereferenceable(246) %p) {\n"
            "  %v = load i8, ptr %p, align 123\n  ret i8 %v\n}\n");
  EXPECT_EQ(runCmd(tool("amut-opt") + " -passes=infer-alignment "
                                      "-inject-bugs " +
                   TmpDir + "/crash.ll " + TmpDir + "/out.ll"),
            134);
  // Without injection the same input is fine.
  EXPECT_EQ(runCmd(tool("amut-opt") + " -passes=infer-alignment " + TmpDir +
                   "/crash.ll " + TmpDir + "/out.ll"),
            0);
}

TEST_F(ToolsTest, SaveDirWorkflow) {
  std::string Dir = TmpDir + "/mutants";
  ASSERT_EQ(runCmd("mkdir -p " + Dir + " && rm -f " + Dir + "/*.ll"), 0);
  ASSERT_EQ(runCmd(tool("alive-mutate") + " -n=3 -saveAll -save-dir=" + Dir +
                   " " + TmpDir + "/in.ll"),
            0);
  std::string Err;
  for (int Seed = 1; Seed <= 3; ++Seed)
    EXPECT_NE(parseModuleFile(Dir + "/mutant-" + std::to_string(Seed) +
                                  ".ll",
                              Err),
              nullptr)
        << Err;
}

TEST_F(ToolsTest, AliveMutateRejectsIncoherentFlagCombos) {
  // Each combo must die with a config error (exit 1) before any work.
  std::string In = " " + TmpDir + "/in.ll";
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -replay=" + TmpDir + " -j=4"), 1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -replay=" + TmpDir + " -resume"),
            1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -replay=" + TmpDir + " -isolate"),
            1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=5 -resume" + In), 1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -t=1 -isolate" + In), 1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=5 -isolate -trace-json=" +
                   TmpDir + "/t.json" + In),
            1);
  // -resume with a conflicting -seed is refused by the checkpoint meta.
  std::string Ckpt = TmpDir + "/ckpt_conflict";
  ASSERT_EQ(runCmd(tool("alive-mutate") + " -n=5 -seed=1 -checkpoint=" +
                   Ckpt + In),
            0);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=5 -seed=2 -checkpoint=" +
                   Ckpt + " -resume" + In),
            1);
}

TEST_F(ToolsTest, AliveMutateRejectsTimeLimitedCheckpointAndFeedback) {
  std::string In = " " + TmpDir + "/in.ll";
  // The satellite bugfix: -checkpoint next to -t used to be accepted and
  // silently checkpointed the default iteration campaign instead. Now
  // every schedule-dependent feature demands an iteration bound.
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -t=1 -checkpoint=" + TmpDir +
                   "/ck_t" + In),
            1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -t=1 -feedback" + In), 1);
  // Feedback's epoch barrier excludes isolation and bundle trails, and
  // -distill is meaningless without the coverage a feedback run collects.
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=5 -feedback -isolate" + In),
            1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=5 -feedback -bug-bundles=" +
                   TmpDir + "/bb" + In),
            1);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=5 -distill" + In), 1);
  // The coherent spellings run clean.
  EXPECT_EQ(runCmd(tool("alive-mutate") +
                   " -n=8 -feedback -feedback-epoch=4 -distill" + In),
            0);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=8 -feedback=off" + In), 0);
}

TEST_F(ToolsTest, AliveMutateSkipsBrokenCorpusFiles) {
  // A broken file next to a good one: warn and fuzz what loads. Only a
  // fully unusable corpus is an error.
  writeFile(TmpDir + "/broken.ll", "not IR {{{");
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=10 " + TmpDir + "/in.ll " +
                   TmpDir + "/broken.ll"),
            0);
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=10 " + TmpDir + "/broken.ll"),
            1);
}

TEST_F(ToolsTest, AliveMutateResumeSmoke) {
  // CLI-level checkpoint/resume: resuming a finished campaign re-merges
  // the checkpointed shards and reproduces the deterministic report
  // section byte for byte without re-running any iteration.
  std::string Ckpt = TmpDir + "/ckpt_smoke";
  std::string Common = " -n=40 -inject-bugs -seed=3 -j=2 -checkpoint=" +
                       Ckpt + " " + TmpDir + "/in.ll";
  int First = runCmd(tool("alive-mutate") + " -stats-json=" + TmpDir +
                     "/r1.json" + Common);
  // 0 (clean) or 2 (bugs found) depending on what the seeds surface;
  // anything else is a config/setup failure.
  ASSERT_TRUE(First == 0 || First == 2) << First;
  ASSERT_EQ(runCmd(tool("alive-mutate") + " -resume -stats-json=" + TmpDir +
                   "/r2.json" + Common),
            First);
  std::string R1 = readFile(TmpDir + "/r1.json");
  std::string R2 = readFile(TmpDir + "/r2.json");
  ASSERT_FALSE(R1.empty());
  size_t V1 = R1.find("\"volatile\""), V2 = R2.find("\"volatile\"");
  ASSERT_NE(V1, std::string::npos);
  ASSERT_NE(V2, std::string::npos);
  EXPECT_EQ(R1.substr(0, V1), R2.substr(0, V2));
}

TEST_F(ToolsTest, AliveMutateIsolateSurvivesCrashingPass) {
  // The CI acceptance scenario at the CLI: a pass that SIGSEGVs inside
  // the shard must not kill the campaign; the tool finishes and reports
  // the contained crashes through the normal bug exit code (2).
  writeFile(TmpDir + "/crashme.ll",
            "define i8 @crashme(i8 %x) {\n"
            "  %r = add i8 %x, 1\n  ret i8 %r\n}\n");
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=2 -isolate "
                   "-passes=test-crash,dce " +
                   TmpDir + "/crashme.ll"),
            2);
}
