//===- tests/tools_test.cpp - CLI tool integration tests --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Drives the built command-line tools end to end, including the full
/// discrete pipeline (mutate -> opt -> tv through real files), the paper's
/// §III-E save/replay workflow, and crash exit codes.
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace alive;

namespace {

/// Tools live next to the test binary's sibling directory.
std::string tool(const std::string &Name) {
  return "../src/tools/" + Name;
}

int runCmd(const std::string &Cmd) {
  int St = std::system((Cmd + " >/dev/null 2>&1").c_str());
  return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
}

std::string TmpDir;

void writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  ASSERT_TRUE(Out.good());
  Out << Text;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

class ToolsTest : public ::testing::Test {
protected:
  void SetUp() override {
    TmpDir = ::testing::TempDir() + "amr_tools";
    ASSERT_EQ(runCmd("mkdir -p " + TmpDir), 0);
    writeFile(TmpDir + "/in.ll", R"(
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
)");
  }
};

} // namespace

TEST_F(ToolsTest, AliveMutateRunsClean) {
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=30 " + TmpDir + "/in.ll"), 0);
}

TEST_F(ToolsTest, AliveMutateFindsInjectedBugs) {
  // Exit code 2 signals discovered bugs.
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=200 -inject-bugs -seed=7 " +
                   TmpDir + "/in.ll"),
            2);
}

TEST_F(ToolsTest, AliveMutateRejectsInvalidPipeline) {
  // Exit code 1, in every build mode — the old assert-only validation
  // let an NDEBUG build silently fuzz an empty pipeline.
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=30 -passes=no-such-pass " +
                   TmpDir + "/in.ll"),
            1);
}

TEST_F(ToolsTest, AliveMutateRejectsUnboundedCampaign) {
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=0 " + TmpDir + "/in.ll"), 1);
}

TEST_F(ToolsTest, AliveMutateParallelFindsInjectedBugs) {
  EXPECT_EQ(runCmd(tool("alive-mutate") + " -n=200 -j=4 -inject-bugs "
                                          "-seed=7 " +
                   TmpDir + "/in.ll"),
            2);
}

TEST_F(ToolsTest, AliveMutateParallelReportMatchesSequential) {
  // The -j 4 stats + bug report is byte-identical to -j 1 apart from the
  // wall-clock and worker-count lines.
  std::string Base =
      " -n=200 -inject-bugs -seed=7 -report " + TmpDir + "/in.ll";
  ASSERT_EQ(runCmd("(" + tool("alive-mutate") + " -j=1" + Base + " > " +
                   TmpDir + "/seq.txt)"),
            2);
  ASSERT_EQ(runCmd("(" + tool("alive-mutate") + " -j=4" + Base + " > " +
                   TmpDir + "/par.txt)"),
            2);
  auto Strip = [](const std::string &Text) {
    std::stringstream In(Text), Out;
    std::string Line;
    while (std::getline(In, Line))
      if (Line.find("time:") == std::string::npos &&
          Line.find("worker(s)") == std::string::npos &&
          // Hit/miss splits depend on each worker's private cache history.
          Line.find("tv-cache:") == std::string::npos)
        Out << Line << '\n';
    return Out.str();
  };
  std::string Seq = Strip(readFile(TmpDir + "/seq.txt"));
  std::string Par = Strip(readFile(TmpDir + "/par.txt"));
  EXPECT_FALSE(Seq.empty());
  EXPECT_EQ(Seq, Par);
}

TEST_F(ToolsTest, DiscretePipelineRoundTrips) {
  std::string In = TmpDir + "/in.ll";
  std::string Mut = TmpDir + "/mutant.ll";
  std::string Opt = TmpDir + "/opt.ll";
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=5 " + In + " " + Mut), 0);
  // The mutant file parses and differs from the input.
  std::string Err;
  auto M = parseModuleFile(Mut, Err);
  ASSERT_NE(M, nullptr) << Err;
  ASSERT_EQ(runCmd(tool("amut-opt") + " -passes=O2 " + Mut + " " + Opt), 0);
  auto O = parseModuleFile(Opt, Err);
  ASSERT_NE(O, nullptr) << Err;
  // The optimized mutant refines the mutant.
  EXPECT_EQ(runCmd(tool("amut-tv") + " " + Mut + " " + Opt), 0);
}

TEST_F(ToolsTest, MutantRegenerationIsStableAcrossProcesses) {
  // §III-E: the same seed regenerates the same mutant, even in separate
  // tool invocations.
  std::string In = TmpDir + "/in.ll";
  std::string A = TmpDir + "/a.ll", B = TmpDir + "/b.ll";
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=99 " + In + " " + A), 0);
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=99 " + In + " " + B), 0);
  EXPECT_EQ(readFile(A), readFile(B));
  ASSERT_EQ(runCmd(tool("amut-mutate") + " -seed=100 " + In + " " + B), 0);
  EXPECT_NE(readFile(A), readFile(B));
}

TEST_F(ToolsTest, AmutTvDetectsMiscompile) {
  writeFile(TmpDir + "/src.ll", "define i32 @f(i32 %x) {\n"
                                "  %a = add i32 %x, 1\n  ret i32 %a\n}\n");
  writeFile(TmpDir + "/tgt.ll", "define i32 @f(i32 %x) {\n"
                                "  %a = add i32 %x, 2\n  ret i32 %a\n}\n");
  EXPECT_EQ(runCmd(tool("amut-tv") + " " + TmpDir + "/src.ll " + TmpDir +
                   "/tgt.ll"),
            2);
}

TEST_F(ToolsTest, AmutOptCrashExitCode) {
  // A direct trigger for seeded crash 64687 through the standalone opt
  // tool: non-power-of-two alignment + -inject-bugs => SIGABRT-style 134.
  writeFile(TmpDir + "/crash.ll",
            "define i8 @f(ptr dereferenceable(246) %p) {\n"
            "  %v = load i8, ptr %p, align 123\n  ret i8 %v\n}\n");
  EXPECT_EQ(runCmd(tool("amut-opt") + " -passes=infer-alignment "
                                      "-inject-bugs " +
                   TmpDir + "/crash.ll " + TmpDir + "/out.ll"),
            134);
  // Without injection the same input is fine.
  EXPECT_EQ(runCmd(tool("amut-opt") + " -passes=infer-alignment " + TmpDir +
                   "/crash.ll " + TmpDir + "/out.ll"),
            0);
}

TEST_F(ToolsTest, SaveDirWorkflow) {
  std::string Dir = TmpDir + "/mutants";
  ASSERT_EQ(runCmd("mkdir -p " + Dir + " && rm -f " + Dir + "/*.ll"), 0);
  ASSERT_EQ(runCmd(tool("alive-mutate") + " -n=3 -saveAll -save-dir=" + Dir +
                   " " + TmpDir + "/in.ll"),
            0);
  std::string Err;
  for (int Seed = 1; Seed <= 3; ++Seed)
    EXPECT_NE(parseModuleFile(Dir + "/mutant-" + std::to_string(Seed) +
                                  ".ll",
                              Err),
              nullptr)
        << Err;
}
