//===- tests/parser_test.cpp - Parser/printer tests ------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  if (M) {
    std::vector<std::string> VErrs;
    EXPECT_TRUE(verifyModule(*M, VErrs))
        << (VErrs.empty() ? "" : VErrs.front());
  }
  return M;
}

void expectParseError(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_EQ(M, nullptr);
  EXPECT_FALSE(Err.empty());
}

/// Round-trips Src through print+parse and checks the text is stable.
void roundTrip(const std::string &Src) {
  std::string Err;
  auto M1 = parseModule(Src, Err);
  ASSERT_NE(M1, nullptr) << Err;
  std::string Text1 = printModule(*M1);
  auto M2 = parseModule(Text1, Err);
  ASSERT_NE(M2, nullptr) << Err << "\nin printed text:\n" << Text1;
  EXPECT_EQ(Text1, printModule(*M2));
}

} // namespace

TEST(ParserTest, SimpleFunction) {
  auto M = parseOk("define i32 @add(i32 %a, i32 %b) {\n"
                   "  %s = add nsw i32 %a, %b\n"
                   "  ret i32 %s\n"
                   "}\n");
  Function *F = M->getFunction("add");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getNumArgs(), 2u);
  auto *Add = cast<BinaryInst>(F->getEntryBlock()->getInst(0));
  EXPECT_TRUE(Add->hasNSW());
  EXPECT_FALSE(Add->hasNUW());
}

TEST(ParserTest, PaperListing1) {
  // Listing 1 from the paper, verbatim (with legacy pointer-free types).
  auto M = parseOk(R"(
define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
)");
  Function *F = M->getFunction("t1_ult_slt_0");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getEntryBlock()->size(), 6u);
}

TEST(ParserTest, PaperListing4LegacyPointers) {
  // Listing 4 uses typed pointers (i32*); they must parse as ptr.
  auto M = parseOk(R"(
define i32 @test9(i32* %p, i32* %q) {
  %a = load i32, i32* %q
  call void @clobber(i32* %p)
  %b = load i32, i32* %q
  %c = sub i32 %a, %b
  ret i32 %c
}
)");
  Function *F = M->getFunction("test9");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->getArg(0)->getType()->isPointerTy());
  // @clobber was auto-declared.
  Function *Clobber = M->getFunction("clobber");
  ASSERT_NE(Clobber, nullptr);
  EXPECT_TRUE(Clobber->isDeclaration());
}

TEST(ParserTest, AttributesInlineAndGroups) {
  auto M = parseOk(R"(
define i32 @test9(i32* dereferenceable(2) %p, i32* %q) #0 {
  %a = load i32, i32* %q
  ret i32 %a
}

attributes #0 = { nofree }
)");
  Function *F = M->getFunction("test9");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->hasFnAttr(FnAttr::NoFree));
  EXPECT_EQ(F->paramAttrs(0).Dereferenceable, 2u);
}

TEST(ParserTest, Intrinsics) {
  auto M = parseOk(R"(
define i8 @smax_offset(i8 %x) {
  %m = call i8 @llvm.smax.i8(i8 %x, i8 -124)
  ret i8 %m
}
)");
  auto *F = M->getFunction("llvm.smax.i8");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getIntrinsicID(), IntrinsicID::SMax);
}

TEST(ParserTest, MultiBlockWithPhi) {
  auto M = parseOk(R"(
define i32 @loop(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %next, %head ]
  %next = add i32 %i, 1
  %done = icmp eq i32 %next, %n
  br i1 %done, label %exit, label %head
exit:
  ret i32 %next
}
)");
  Function *F = M->getFunction("loop");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->getNumBlocks(), 3u);
  auto *Phi = dyn_cast<PhiNode>(F->getBlock(1)->getInst(0));
  ASSERT_NE(Phi, nullptr);
  EXPECT_EQ(Phi->getNumIncoming(), 2u);
}

TEST(ParserTest, ForwardReferencesParseButFailVerifier) {
  // A use textually before its definition must parse (forward reference),
  // and the verifier must then reject it because the definition does not
  // dominate the use.
  std::string Err;
  auto M = parseModule(R"(
define i32 @fwd(i1 %c) {
entry:
  br i1 %c, label %a, label %b
b:
  ret i32 %v
a:
  %v = add i32 1, 2
  br label %b
}
)",
                       Err);
  ASSERT_NE(M, nullptr) << Err;
  Function *F = M->getFunction("fwd");
  ASSERT_NE(F, nullptr);
  EXPECT_NE(verifyError(*F), "");
}

TEST(ParserTest, ForwardReferenceWithDominanceVerifies) {
  // Here the forward-referenced value's block dominates the user's block.
  auto M = parseOk(R"(
define i32 @fwd2(i1 %c) {
entry:
  br label %a
b:
  ret i32 %v
a:
  %v = add i32 1, 2
  br label %b
}
)");
  EXPECT_NE(M->getFunction("fwd2"), nullptr);
}

TEST(ParserTest, Switch) {
  auto M = parseOk(R"(
define i32 @sw(i32 %x) {
entry:
  switch i32 %x, label %d [
    i32 0, label %a
    i32 1, label %b
  ]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 30
}
)");
  auto *Sw = cast<SwitchInst>(
      M->getFunction("sw")->getEntryBlock()->getTerminator());
  EXPECT_EQ(Sw->getNumCases(), 2u);
}

TEST(ParserTest, VectorOps) {
  auto M = parseOk(R"(
define <4 x i32> @vec(<4 x i32> %v, i32 %e) {
  %w = add <4 x i32> %v, <i32 1, i32 2, i32 3, i32 4>
  %x = insertelement <4 x i32> %w, i32 %e, i32 0
  %y = shufflevector <4 x i32> %x, <4 x i32> %v, <4 x i32> <i32 0, i32 5, i32 poison, i32 3>
  ret <4 x i32> %y
}
)");
  Function *F = M->getFunction("vec");
  ASSERT_NE(F, nullptr);
  auto *SV = cast<ShuffleVectorInst>(F->getEntryBlock()->getInst(2));
  EXPECT_EQ(SV->getMask()[2], -1);
  EXPECT_EQ(SV->getMask()[1], 5);
}

TEST(ParserTest, MemoryOps) {
  auto M = parseOk(R"(
define i64 @mem(ptr %p) {
  %q = getelementptr inbounds i64, ptr %p, i64 1
  %a = alloca i64, align 8
  store i64 7, ptr %a, align 8
  %v = load i64, ptr %q, align 8
  %w = load i64, ptr %a
  %s = add i64 %v, %w
  ret i64 %s
}
)");
  auto *G = cast<GEPInst>(M->getFunction("mem")->getEntryBlock()->getInst(0));
  EXPECT_TRUE(G->isInBounds());
}

TEST(ParserTest, ConstantsAndSpecials) {
  auto M = parseOk(R"(
define i1 @consts(ptr %p) {
  %a = icmp eq ptr %p, null
  %b = select i1 %a, i1 true, i1 false
  %c = xor i1 %b, true
  %f = freeze i1 undef
  %g = or i1 %c, %f
  %h = and i1 %g, poison
  ret i1 %h
}
)");
  EXPECT_NE(M->getFunction("consts"), nullptr);
}

TEST(ParserTest, NegativeAndWideLiterals) {
  auto M = parseOk(R"(
define i64 @wide() {
  %a = add i64 9223372036854775807, -1
  ret i64 %a
}
)");
  auto *B = cast<BinaryInst>(
      M->getFunction("wide")->getEntryBlock()->getInst(0));
  EXPECT_TRUE(
      cast<ConstantInt>(B->getLHS())->getValue().isSignedMaxValue());
  // Widths above 64 are rejected (the toolchain's documented cap).
  expectParseError("define i128 @toowide() { ret i128 0 }");
}

TEST(ParserTest, Errors) {
  expectParseError("define i32 @f( {");
  expectParseError("define i32 @f() { ret i32 %undefined }");
  expectParseError("define i32 @f() { %x = bogus i32 1 \n ret i32 %x }");
  expectParseError("define i32 @f() { %x = add i7x 1, 2 \n ret i32 %x }");
  expectParseError("garbage");
  expectParseError("define i32 @f() { ret i32 }");
  // Duplicate definitions of the same value name.
  expectParseError("define i32 @f(i32 %a) {\n"
                   "  %x = add i32 %a, 1\n  %x = add i32 %a, 2\n"
                   "  ret i32 %x\n}");
  // Duplicate function.
  expectParseError(
      "define i32 @f() { ret i32 0 }\ndefine i32 @f() { ret i32 1 }");
}

TEST(PrinterTest, RoundTripStability) {
  roundTrip(R"(
define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}
)");
  roundTrip(R"(
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
)");
  roundTrip(R"(
define i32 @multi(i1 %c, i32 %x) {
entry:
  br i1 %c, label %t, label %f
t:
  %a = mul nuw nsw i32 %x, 3
  br label %join
f:
  %b = udiv exact i32 %x, 4
  br label %join
join:
  %p = phi i32 [ %a, %t ], [ %b, %f ]
  ret i32 %p
}
)");
  roundTrip(R"(
define <2 x i8> @v(<2 x i8> %x) {
  %y = sub <2 x i8> <i8 poison, i8 undef>, %x
  ret <2 x i8> %y
}
)");
}

TEST(PrinterTest, UnnamedValuesGetSlots) {
  auto M = parseOk("define i32 @f(i32 %x) {\n"
                   "  %1 = add i32 %x, 1\n"
                   "  %2 = mul i32 %1, %1\n"
                   "  ret i32 %2\n"
                   "}\n");
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("%1 = add"), std::string::npos);
  roundTrip(Text);
}

TEST(PrinterTest, DeclarationWithAttrs) {
  auto M = parseOk(
      "declare void @ext(ptr nocapture readonly, i32) nofree nounwind\n");
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("nocapture"), std::string::npos);
  EXPECT_NE(Text.find("nofree"), std::string::npos);
  roundTrip(Text);
}
