//===- tests/encoder_test.cpp - Symbolic encoder cross-validation -----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Property suite pinning the symbolic encoder to the interpreter: for
/// random loop-free integer functions and random concrete inputs, the
/// term-level evaluation of the encoding (UB wire, poison wire, return
/// value) must agree exactly with concrete interpretation. This is the
/// same cross-check the refinement checker relies on when it confirms SAT
/// counterexamples by replay.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "ir/Interpreter.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "support/RandomGenerator.h"
#include "tv/FunctionEncoder.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

/// Cross-checks one function on N random inputs. \returns the number of
/// inputs actually compared (skips freeze-bearing executions where the
/// encoder's fresh variables legitimately diverge).
unsigned crossCheck(const Function &F, unsigned Trials, uint64_t Seed) {
  TermBuilder B;
  FunctionEncoder Enc(B);
  std::vector<EncodedValue> Args = Enc.makeArguments(F);
  EncodedFunction E = Enc.encode(F, Args);

  bool HasFreeze = false;
  for (BasicBlock *BB : F.blocks())
    for (Instruction *I : BB->insts())
      HasFreeze |= isa<FreezeInst>(I);

  RandomGenerator RNG(Seed);
  unsigned Compared = 0;
  for (unsigned T = 0; T != Trials; ++T) {
    std::map<unsigned, APInt> Assign;
    std::vector<ConcVal> CArgs;
    for (unsigned I = 0; I != F.getNumArgs(); ++I) {
      unsigned W = F.getArg(I)->getType()->getIntegerBitWidth();
      APInt V = RNG.nextAPInt(W);
      Assign[Args[I].Val->VarId] = V;
      Assign[Args[I].Poison->VarId] = APInt(1, 0); // non-poison inputs
      CArgs.push_back(ConcVal::scalar(V));
    }

    ExecOptions Opts;
    Memory Mem;
    Interpreter Interp(Mem, Opts);
    ExecResult R = Interp.run(F, CArgs);

    bool SymUB = !B.evaluate(E.UB, Assign).isZero();
    EXPECT_EQ(R.Status == ExecStatus::UB, SymUB)
        << printFunction(F) << "input trial " << T;
    if (R.Status != ExecStatus::Ok || SymUB)
      continue;
    if (F.getReturnType()->isVoidTy())
      continue;

    bool SymPoison = !B.evaluate(E.RetPoison, Assign).isZero();
    bool ConcPoison = R.Ret.lane().Poison;
    if (HasFreeze && (SymPoison || ConcPoison))
      continue; // freeze fresh-variable divergence is expected
    EXPECT_EQ(ConcPoison, SymPoison) << printFunction(F);
    if (ConcPoison || SymPoison)
      continue;
    if (HasFreeze)
      continue; // values may pass through unbound freeze variables
    APInt SymVal = B.evaluate(E.RetVal, Assign);
    EXPECT_EQ(R.Ret.lane().Val, SymVal) << printFunction(F);
    ++Compared;
  }
  return Compared;
}

} // namespace

TEST(EncoderTest, HandWrittenShapes) {
  const char *Shapes[] = {
      R"(define i8 @f(i8 %x, i8 %y) {
  %a = add nsw i8 %x, %y
  %b = xor i8 %a, %y
  %c = icmp slt i8 %b, %x
  %r = select i1 %c, i8 %a, i8 %b
  ret i8 %r
})",
      R"(define i8 @f(i8 %x, i8 %y) {
  %d = udiv i8 %x, %y
  %m = mul i8 %d, %y
  ret i8 %m
})",
      R"(define i16 @f(i8 %x) {
  %z = sext i8 %x to i16
  %t = shl i16 %z, 3
  %u = ashr exact i16 %t, 1
  ret i16 %u
})",
      R"(define i8 @f(i1 %c, i8 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %v1 = add i8 %x, 1
  br label %join
b:
  %v2 = sub i8 %x, 1
  br label %join
join:
  %p = phi i8 [ %v1, %a ], [ %v2, %b ]
  ret i8 %p
})",
      R"(define i8 @f(i8 %x) {
entry:
  switch i8 %x, label %d [
    i8 0, label %a
    i8 1, label %b
  ]
a:
  ret i8 10
b:
  ret i8 20
d:
  %m = call i8 @llvm.smax.i8(i8 %x, i8 7)
  ret i8 %m
})",
      R"(define i8 @f(i8 %x) {
  %a = call i8 @llvm.ctpop.i8(i8 %x)
  %b = call i8 @llvm.bswap.i8(i8 %x)
  %c = add i8 %a, %b
  ret i8 %c
})",
  };
  for (const char *IR : Shapes) {
    std::string Err;
    auto M = parseModule(IR, Err);
    ASSERT_NE(M, nullptr) << Err;
    Function *F = M->getFunction("f");
    std::string Why;
    if (strstr(IR, "bswap.i8")) {
      // i8 bswap is invalid (needs multiples of 16); expect rejection by
      // the interpreter path instead — skip it here.
      continue;
    }
    ASSERT_TRUE(FunctionEncoder::isSymbolicallySupported(*F, Why)) << Why;
    crossCheck(*F, 64, 42);
  }
}

class EncoderPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncoderPropertyTest, RandomFunctionsAgreeWithInterpreter) {
  uint64_t Seed = GetParam();
  unsigned Checked = 0;
  for (unsigned FileIdx = 0; FileIdx != 12; ++FileIdx) {
    auto M = generateRandomModule(Seed * 131 + FileIdx, 2);
    for (Function *F : M->functions()) {
      if (F->isDeclaration() || F->isIntrinsic())
        continue;
      std::string Why;
      if (!FunctionEncoder::isSymbolicallySupported(*F, Why))
        continue;
      crossCheck(*F, 24, Seed * 977 + FileIdx);
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 4u) << "generator produced too few symbolic functions";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncoderPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(EncoderTest, UnsupportedShapesAreReported) {
  struct Case {
    const char *IR;
    const char *WhySubstr;
  };
  const Case Cases[] = {
      {R"(define i32 @f(ptr %p) {
  %v = load i32, ptr %p
  ret i32 %v
})",
       "argument"},
      {R"(define i32 @f(i32 %n) {
entry:
  br label %loop
loop:
  %i = phi i32 [ 0, %entry ], [ %j, %loop ]
  %j = add i32 %i, 1
  %c = icmp ult i32 %j, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i32 %i
})",
       "loop"},
      {R"(declare i32 @ext(i32)
define i32 @f(i32 %x) {
  %v = call i32 @ext(i32 %x)
  ret i32 %v
})",
       "non-intrinsic"},
      {R"(define <2 x i8> @f(<2 x i8> %v) {
  %r = add <2 x i8> %v, %v
  ret <2 x i8> %r
})",
       ""},
  };
  for (const Case &C : Cases) {
    std::string Err;
    auto M = parseModule(C.IR, Err);
    ASSERT_NE(M, nullptr) << Err;
    std::string Why;
    EXPECT_FALSE(
        FunctionEncoder::isSymbolicallySupported(*M->getFunction("f"), Why))
        << C.IR;
    if (*C.WhySubstr)
      EXPECT_NE(Why.find(C.WhySubstr), std::string::npos) << Why;
  }
}
