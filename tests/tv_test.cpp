//===- tests/tv_test.cpp - Translation validation tests --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Exercises the Alive2-substitute refinement checker on equivalences,
/// refinements, and miscompilations — including the actual miscompilation
/// from the paper's Figure 1 (Listings 2 vs 3).
///
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "tv/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

/// Parses a module containing @src and @tgt and checks @tgt against @src.
TVResult check(const std::string &IR, const TVOptions &Opts = TVOptions()) {
  std::string Err;
  auto M = parseModule(IR, Err);
  EXPECT_NE(M, nullptr) << Err;
  if (!M)
    return TVResult();
  Function *Src = M->getFunction("src");
  Function *Tgt = M->getFunction("tgt");
  EXPECT_NE(Src, nullptr);
  EXPECT_NE(Tgt, nullptr);
  return checkRefinement(*Src, *Tgt, Opts);
}

} // namespace

TEST(TVTest, IdenticalFunctionsRefine) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}
define i32 @tgt(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
  EXPECT_FALSE(R.UsedConcretePath);
}

TEST(TVTest, AlgebraicEquivalence) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %a = mul i32 %x, 8
  ret i32 %a
}
define i32 @tgt(i32 %x) {
  %a = shl i32 %x, 3
  ret i32 %a
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, ValueMismatchDetected) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}
define i32 @tgt(i32 %x) {
  %a = add i32 %x, 2
  ret i32 %a
}
)");
  ASSERT_EQ(R.Verdict, TVVerdict::Incorrect);
  EXPECT_FALSE(R.Detail.empty());
  ASSERT_EQ(R.CounterExample.size(), 1u);
}

TEST(TVTest, DroppingFlagsIsRefinement) {
  // Removing nsw reduces poison: correct direction.
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %a = add nsw i32 %x, 1
  ret i32 %a
}
define i32 @tgt(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, AddingFlagsIsNotRefinement) {
  // Adding nsw introduces poison where the source was defined: a bug.
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}
define i32 @tgt(i32 %x) {
  %a = add nsw i32 %x, 1
  ret i32 %a
}
)");
  ASSERT_EQ(R.Verdict, TVVerdict::Incorrect);
  // The counterexample must be INT_MAX (the only overflowing input).
  ASSERT_EQ(R.CounterExample.size(), 1u);
  EXPECT_TRUE(R.CounterExample[0].lane().Val.isSignedMaxValue());
}

TEST(TVTest, PoisonIsRefinedByAnything) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  ret i32 poison
}
define i32 @tgt(i32 %x) {
  ret i32 5
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, IntroducingPoisonIsABug) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  ret i32 5
}
define i32 @tgt(i32 %x) {
  ret i32 poison
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Incorrect);
}

TEST(TVTest, IntroducingUBIsABug) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  ret i32 0
}
define i32 @tgt(i32 %x) {
  %d = udiv i32 5, %x
  %z = mul i32 %d, 0
  ret i32 %z
}
)");
  ASSERT_EQ(R.Verdict, TVVerdict::Incorrect);
  // Counterexample must be x == 0 (the divide-by-zero input).
  ASSERT_EQ(R.CounterExample.size(), 1u);
  EXPECT_TRUE(R.CounterExample[0].lane().Val.isZero());
}

TEST(TVTest, UBInSourceAllowsAnything) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %d = udiv i32 5, 0
  ret i32 %d
}
define i32 @tgt(i32 %x) {
  ret i32 12345
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, BranchSelectEquivalence) {
  TVResult R = check(R"(
define i32 @src(i1 %c, i32 %a, i32 %b) {
entry:
  br i1 %c, label %t, label %f
t:
  br label %join
f:
  br label %join
join:
  %r = phi i32 [ %a, %t ], [ %b, %f ]
  ret i32 %r
}
define i32 @tgt(i1 %c, i32 %a, i32 %b) {
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, SwitchEncoding) {
  TVResult R = check(R"(
define i32 @src(i8 %x) {
entry:
  switch i8 %x, label %d [
    i8 0, label %a
    i8 1, label %b
  ]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 30
}
define i32 @tgt(i8 %x) {
  %is0 = icmp eq i8 %x, 0
  %is1 = icmp eq i8 %x, 1
  %t = select i1 %is1, i32 20, i32 30
  %r = select i1 %is0, i32 10, i32 %t
  ret i32 %r
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, PaperFigure1Miscompilation) {
  // Listing 2 (mutated source) vs Listing 3 (InstCombine output, January
  // 2022) — the unsound optimization alive-mutate reported. With inputs
  // x=2, low=1, high=1 the source returns 1 but the target returns 2.
  TVResult R = check(R"(
define i32 @src(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %1 = xor i1 %t2, true
  %r = select i1 %1, i32 %x, i32 %t1
  ret i32 %r
}
define i32 @tgt(i32 %x, i32 %low, i32 %high) {
  %1 = icmp slt i32 %x, 0
  %2 = icmp sgt i32 %x, 65535
  %3 = select i1 %1, i32 %low, i32 %x
  %4 = select i1 %2, i32 %high, i32 %3
  ret i32 %4
}
)");
  ASSERT_EQ(R.Verdict, TVVerdict::Incorrect) << R.Detail;
  // 96 bits of input: the symbolic path finds the model, and the concrete
  // replay that confirms it (rejecting spurious freeze models) is recorded.
  EXPECT_TRUE(R.UsedConcretePath);
  // Three i32 parameters, positions preserved.
  EXPECT_EQ(R.CounterExample.size(), 3u);
}

TEST(TVTest, PaperListing17Miscompilation) {
  // Listing 17: InstCombine assumed (zext a)*(zext a) cannot overflow in
  // i34 and folded the ule-compare to true. Alive2 found %x = 3363831808.
  TVResult R = check(R"(
define i1 @src(i32 %x) {
entry:
  %r = zext i32 %x to i64
  %0 = trunc i64 %r to i34
  %new0 = mul i34 %0, %0
  %last = zext i34 %new0 to i64
  %res = icmp ule i64 %last, 4294967295
  ret i1 %res
}
define i1 @tgt(i32 %x) {
entry:
  ret i1 true
}
)");
  ASSERT_EQ(R.Verdict, TVVerdict::Incorrect) << R.Detail;
  // Any counterexample must actually overflow: x*x >= 2^32 in i34.
  ASSERT_EQ(R.CounterExample.size(), 1u);
  APInt X = R.CounterExample[0].lane().Val.zext(34);
  EXPECT_TRUE((X * X).ugt(APInt(34, 0xFFFFFFFFULL)));
}

TEST(TVTest, NoundefAttributeMatters) {
  // src: noundef param means poison input is UB, so tgt may do anything on
  // poison inputs; the pair is equivalent for non-poison inputs.
  TVResult R = check(R"(
define i32 @src(i32 noundef %x) {
  %f = freeze i32 %x
  ret i32 %f
}
define i32 @tgt(i32 noundef %x) {
  ret i32 %x
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
}

TEST(TVTest, FreezeNotRemovableWithoutNoundef) {
  // Without noundef, replacing freeze(x) by x is a (subtle) non-refinement
  // when x can be poison. Our checker reports it either as incorrect or —
  // because of the freeze-encoding confirmation step — inconclusive; it
  // must NOT claim refinement was proven.
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %f = freeze i32 %x
  %r = udiv i32 1, %f
  ret i32 %r
}
define i32 @tgt(i32 %x) {
  %r = udiv i32 1, %x
  ret i32 %r
}
)");
  EXPECT_NE(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, MemoryRoundTrip) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  %p = alloca i32, align 4
  store i32 %x, ptr %p, align 4
  %v = load i32, ptr %p, align 4
  ret i32 %v
}
define i32 @tgt(i32 %x) {
  ret i32 %x
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
  EXPECT_TRUE(R.UsedConcretePath);
}

TEST(TVTest, MemoryMiscompileDetected) {
  TVResult R = check(R"(
define void @src(ptr %p) {
  store i32 7, ptr %p, align 4
  ret void
}
define void @tgt(ptr %p) {
  store i32 8, ptr %p, align 4
  ret void
}
)");
  ASSERT_EQ(R.Verdict, TVVerdict::Incorrect) << R.Detail;
  EXPECT_NE(R.Detail.find("memory mismatch"), std::string::npos);
}

TEST(TVTest, StoreValueVisibleToCaller) {
  // Dropping a store to a caller-visible pointer is a miscompilation.
  TVResult R = check(R"(
define void @src(ptr %p) {
  store i32 42, ptr %p, align 4
  ret void
}
define void @tgt(ptr %p) {
  ret void
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Incorrect);
}

TEST(TVTest, LoopsUseConcretePath) {
  // Sum 0..n-1 over i8 vs the closed form; exhaustively enumerable.
  TVResult R = check(R"(
define i8 @src(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i8 [ 0, %entry ], [ %accnext, %body ]
  %done = icmp uge i8 %i, %n
  br i1 %done, label %exit, label %body
body:
  %accnext = add i8 %acc, %i
  %inext = add i8 %i, 1
  br label %head
exit:
  ret i8 %acc
}
define i8 @tgt(i8 %n) {
  %nm1 = sub i8 %n, 1
  %nhalf = lshr i8 %n, 1
  %mhalf = lshr i8 %nm1, 1
  %even = mul i8 %nhalf, %nm1
  %odd = mul i8 %n, %mhalf
  %bit = and i8 %n, 1
  %isodd = icmp eq i8 %bit, 1
  %r = select i1 %isodd, i8 %odd, i8 %even
  ret i8 %r
}
)");
  EXPECT_TRUE(R.UsedConcretePath);
  // Halve the even factor before multiplying so nothing wraps early:
  // a correct closed form for the i8 sum.
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
}

TEST(TVTest, VectorFunctionsUseConcretePath) {
  TVResult R = check(R"(
define <4 x i8> @src(<4 x i8> %v) {
  %r = add <4 x i8> %v, %v
  ret <4 x i8> %r
}
define <4 x i8> @tgt(<4 x i8> %v) {
  %r = mul <4 x i8> %v, <i8 2, i8 2, i8 2, i8 2>
  ret <4 x i8> %r
}
)");
  EXPECT_TRUE(R.UsedConcretePath);
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
}

TEST(TVTest, SignatureMismatchUnsupported) {
  TVResult R = check(R"(
define i32 @src(i32 %x) {
  ret i32 %x
}
define i64 @tgt(i64 %x) {
  ret i64 %x
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Unsupported);
}

TEST(TVTest, SelfRefinement) {
  std::string Err;
  auto M = parseModule(R"(
define i32 @f(i32 %x, i32 %y) {
  %c = icmp slt i32 %x, %y
  %m = select i1 %c, i32 %x, i32 %y
  ret i32 %m
}
)",
                       Err);
  ASSERT_NE(M, nullptr) << Err;
  TVResult R = checkSelfRefinement(*M->getFunction("f"));
  EXPECT_EQ(R.Verdict, TVVerdict::Correct);
}

TEST(TVTest, IntrinsicEquivalences) {
  // smax(x, y) == select(x sgt y, x, y)
  TVResult R = check(R"(
define i8 @src(i8 %x, i8 %y) {
  %m = call i8 @llvm.smax.i8(i8 %x, i8 %y)
  ret i8 %m
}
define i8 @tgt(i8 %x, i8 %y) {
  %c = icmp sgt i8 %x, %y
  %m = select i1 %c, i8 %x, i8 %y
  ret i8 %m
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;

  // usub.sat(x, y) == select(x ult y, 0, x - y)
  R = check(R"(
define i8 @src(i8 %x, i8 %y) {
  %m = call i8 @llvm.usub.sat.i8(i8 %x, i8 %y)
  ret i8 %m
}
define i8 @tgt(i8 %x, i8 %y) {
  %c = icmp ult i8 %x, %y
  %d = sub i8 %x, %y
  %m = select i1 %c, i8 0, i8 %d
  ret i8 %m
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;

  // bswap(bswap(x)) == x
  R = check(R"(
define i32 @src(i32 %x) {
  %a = call i32 @llvm.bswap.i32(i32 %x)
  %b = call i32 @llvm.bswap.i32(i32 %a)
  ret i32 %b
}
define i32 @tgt(i32 %x) {
  ret i32 %x
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;

  // ctpop(x) + ctpop(~x) == width
  R = check(R"(
define i8 @src(i8 %x) {
  %nx = xor i8 %x, -1
  %a = call i8 @llvm.ctpop.i8(i8 %x)
  %b = call i8 @llvm.ctpop.i8(i8 %nx)
  %s = add i8 %a, %b
  ret i8 %s
}
define i8 @tgt(i8 %x) {
  ret i8 8
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
}

TEST(TVTest, AssumeGuardsRefinement) {
  // Under assume(x != 0), cttz(x, true) == cttz(x, false).
  TVResult R = check(R"(
define i8 @src(i8 %x) {
  %nz = icmp ne i8 %x, 0
  call void @llvm.assume(i1 %nz)
  %t = call i8 @llvm.cttz.i8(i8 %x, i1 true)
  ret i8 %t
}
define i8 @tgt(i8 %x) {
  %nz = icmp ne i8 %x, 0
  call void @llvm.assume(i1 %nz)
  %t = call i8 @llvm.cttz.i8(i8 %x, i1 false)
  ret i8 %t
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
}

TEST(TVTest, ExternalCallsConcreteOracle) {
  // Identical external calls on both sides agree through the environment
  // oracle; the pair refines.
  TVResult R = check(R"(
declare void @clobber(ptr)

define i32 @src(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
define i32 @tgt(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
)");
  EXPECT_TRUE(R.UsedConcretePath);
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
}

TEST(TVTest, ClobberForwardingBugDetected) {
  // Forwarding %a to %b across @clobber(%q) is unsound: the callee may
  // write through the aliasing pointer.
  TVResult R = check(R"(
declare void @clobber(ptr)

define i32 @src(ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %q)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
define i32 @tgt(ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %q)
  %c = sub i32 %a, %a
  ret i32 %c
}
)");
  EXPECT_EQ(R.Verdict, TVVerdict::Incorrect) << R.Detail;
}

//===----------------------------------------------------------------------===//
// Edge-case regressions: exhaustive-bits clamp, counterexample structure,
// and vacuous-trial accounting.
//===----------------------------------------------------------------------===//

TEST(TVTest, ExhaustiveBitsBeyondWordWidthFallsBackToSampling) {
  // ExhaustiveBits >= 64 used to compute `1ULL << TotalBits` — undefined
  // behavior at 64 bits and beyond. The trial count must clamp to the
  // sampled path instead (128 bits of input here).
  TVOptions Opts;
  Opts.ExhaustiveBits = 200;
  Opts.ConcreteTrials = 16;
  TVResult R = check(R"(
define <2 x i64> @src(<2 x i64> %v) {
  %a = add <2 x i64> %v, %v
  ret <2 x i64> %a
}
define <2 x i64> @tgt(<2 x i64> %v) {
  %a = shl <2 x i64> %v, <i64 1, i64 1>
  ret <2 x i64> %a
}
)",
                     Opts);
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
  EXPECT_NE(R.Detail.find("sampled"), std::string::npos) << R.Detail;
}

TEST(TVTest, CounterexamplePreservesArgumentPositions) {
  // The counterexample used to drop poison and vector arguments, silently
  // shifting the remaining values out of their parameter positions. Every
  // parameter must appear, in order, with its lane structure.
  TVResult R = check(R"(
define i32 @src(i32 %x, <2 x i8> %v, i32 %y) {
  ret i32 %y
}
define i32 @tgt(i32 %x, <2 x i8> %v, i32 %y) {
  %a = add i32 %y, 1
  ret i32 %a
}
)");
  ASSERT_EQ(R.Verdict, TVVerdict::Incorrect) << R.Detail;
  EXPECT_TRUE(R.UsedConcretePath); // the vector parameter forces it
  ASSERT_EQ(R.CounterExample.size(), 3u);
  EXPECT_TRUE(R.CounterExample[0].isScalar());
  EXPECT_EQ(R.CounterExample[1].Lanes.size(), 2u);
  EXPECT_TRUE(R.CounterExample[2].isScalar());
}

TEST(TVTest, AllVacuousTargetTrialsAreInconclusive) {
  // The target never terminates: every trial exhausts its fuel on the
  // target side. The old accounting treated those trials as passing and
  // answered "Correct" — a vacuous truth. It must be Inconclusive.
  TVOptions Opts;
  Opts.ExhaustiveBits = 0; // force sampling: a few trials suffice
  Opts.ConcreteTrials = 8;
  Opts.Fuel = 500;
  TVResult R = check(R"(
define i8 @src(i8 %x) {
  ret i8 0
}
define i8 @tgt(i8 %x) {
entry:
  br label %loop
loop:
  br label %loop
}
)",
                     Opts);
  EXPECT_EQ(R.Verdict, TVVerdict::Inconclusive) << R.Detail;
  EXPECT_NE(R.Detail.find("no trial was decisive"), std::string::npos)
      << R.Detail;
}

TEST(TVTest, PartiallyVacuousTargetIsCorrectButSurfaced) {
  // The target terminates only for small inputs under this fuel budget:
  // the decisive trials prove no violation, but the vacuous remainder must
  // be surfaced in the detail instead of silently counted as passing.
  TVOptions Opts;
  Opts.ExhaustiveBits = 0;
  Opts.ConcreteTrials = 16;
  Opts.Fuel = 100;
  TVResult R = check(R"(
define i8 @src(i8 %x) {
  ret i8 0
}
define i8 @tgt(i8 %x) {
entry:
  br label %loop
loop:
  %i = phi i8 [ %x, %entry ], [ %d, %loop ]
  %d = sub i8 %i, 1
  %c = icmp eq i8 %i, 0
  br i1 %c, label %done, label %loop
done:
  ret i8 0
}
)",
                     Opts);
  EXPECT_EQ(R.Verdict, TVVerdict::Correct) << R.Detail;
  EXPECT_NE(R.Detail.find("vacuous on target"), std::string::npos)
      << R.Detail;
}
