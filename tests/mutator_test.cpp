//===- tests/mutator_test.cpp - Mutation engine tests -----------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Validates the paper's central claims about the mutator: every mutation
/// operator produces VERIFIER-VALID IR ("alive-mutate can create valid
/// LLVM IR 100% of the time", §II), runs are deterministic given a seed
/// (§III-E), and each of the nine §IV mutation families does what the
/// paper describes.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "core/FunctionInfo.h"
#include "core/Mutator.h"
#include "corpus/Corpus.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// Applies \p K (retrying up to \p Attempts RNG draws) to a clone of @f of
/// \p IR. Returns the mutated module (or null when never applicable).
std::unique_ptr<Module> applyKind(const std::string &IR, MutationKind K,
                                  uint64_t Seed, unsigned Attempts = 20) {
  auto M = parseOk(IR);
  if (!M)
    return nullptr;
  Function *F = M->getFunction("f");
  EXPECT_NE(F, nullptr);
  OriginalFunctionInfo Info(*F);
  RandomGenerator RNG(Seed);
  MutationOptions Opts;
  Mutator Mut(RNG, Opts);
  for (unsigned I = 0; I != Attempts; ++I) {
    MutantInfo MI(*F, Info);
    if (Mut.apply(K, MI))
      return M;
  }
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// The 100%-validity property (paper §II).
//===----------------------------------------------------------------------===//

class ValidityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValidityTest, EveryMutantPassesTheVerifier) {
  uint64_t Seed = GetParam();

  // A mixed corpus: paper listings + near-miss seeds + generated modules.
  std::vector<std::string> Sources;
  for (const std::string &S : paperListingSeeds())
    Sources.push_back(S);
  for (const NearMissSeed &S : nearMissSeeds())
    Sources.push_back(S.Text);
  for (int I = 0; I != 4; ++I)
    Sources.push_back(printModule(*generateRandomModule(Seed * 100 + I, 2)));

  MutationOptions Opts;
  for (const std::string &Src : Sources) {
    auto Master = parseOk(Src);
    ASSERT_NE(Master, nullptr);

    // Preprocess every definition.
    std::vector<std::pair<std::string, std::unique_ptr<OriginalFunctionInfo>>>
        Infos;
    for (Function *F : Master->functions())
      if (!F->isDeclaration() && !F->isIntrinsic())
        Infos.push_back(
            {F->getName(), std::make_unique<OriginalFunctionInfo>(*F)});

    for (uint64_t Round = 0; Round != 10; ++Round) {
      auto Mutant = cloneModule(*Master);
      RandomGenerator RNG(Seed * 1000 + Round);
      Mutator Mut(RNG, Opts);
      for (auto &[Name, Info] : Infos) {
        Function *F = Mutant->getFunction(Name);
        ASSERT_NE(F, nullptr);
        MutantInfo MI(*F, *Info);
        Mut.mutateFunction(MI);
      }
      std::vector<std::string> Errors;
      ASSERT_TRUE(verifyModule(*Mutant, Errors))
          << Errors.front() << "\nseed " << Seed << " round " << Round
          << "\nmutant:\n"
          << printModule(*Mutant) << "\noriginal:\n"
          << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

//===----------------------------------------------------------------------===//
// Determinism (paper §III-E).
//===----------------------------------------------------------------------===//

TEST(MutatorTest, SameSeedSameMutant) {
  const std::string Src = paperListingSeeds()[0];
  for (uint64_t Seed : {1ull, 42ull, 999ull}) {
    std::string First;
    for (int Rep = 0; Rep != 3; ++Rep) {
      auto M = parseOk(Src);
      Function *F = M->getFunction("t1_ult_slt_0");
      ASSERT_NE(F, nullptr);
      OriginalFunctionInfo Info(*F);
      RandomGenerator RNG(Seed);
      MutationOptions Opts;
      Mutator Mut(RNG, Opts);
      MutantInfo MI(*F, Info);
      Mut.mutateFunction(MI);
      std::string Text = printModule(*M);
      if (Rep == 0)
        First = Text;
      else
        EXPECT_EQ(Text, First) << "seed " << Seed;
    }
  }
}

TEST(MutatorTest, DifferentSeedsDiffer) {
  const std::string Src = paperListingSeeds()[0];
  std::set<std::string> Distinct;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    auto M = parseOk(Src);
    Function *F = M->getFunction("t1_ult_slt_0");
    OriginalFunctionInfo Info(*F);
    RandomGenerator RNG(Seed);
    MutationOptions Opts;
    Mutator Mut(RNG, Opts);
    MutantInfo MI(*F, Info);
    Mut.mutateFunction(MI);
    Distinct.insert(printModule(*M));
  }
  // Not all 12 seeds need to differ, but mutation must actually vary.
  EXPECT_GE(Distinct.size(), 6u);
}

//===----------------------------------------------------------------------===//
// Individual operators (§IV-A..H).
//===----------------------------------------------------------------------===//

TEST(MutatorTest, AttributesToggle) {
  const std::string Src = R"(
declare void @ext(ptr)

define void @f(ptr %p, i32 %x) {
  call void @ext(ptr %p)
  ret void
}
)";
  auto M = applyKind(Src, MutationKind::Attributes, 7);
  ASSERT_NE(M, nullptr);
  // Something attribute-ish must have changed somewhere.
  auto Orig = parseOk(Src);
  EXPECT_NE(printModule(*M), printModule(*Orig));
}

TEST(MutatorTest, InlineReplacesCallWithBody) {
  // Listing 6: @f's body (a store) spliced in place of the @clobber call.
  const std::string Src = R"(
declare void @clobber(ptr)

define void @store42(ptr %ptr) {
  store i32 42, ptr %ptr, align 4
  ret void
}

define i32 @f(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
)";
  auto M = applyKind(Src, MutationKind::Inline, 3);
  ASSERT_NE(M, nullptr);
  std::string Out = printFunction(*M->getFunction("f"));
  EXPECT_EQ(Out.find("call"), std::string::npos) << Out;
  EXPECT_NE(Out.find("store i32 42"), std::string::npos) << Out;
}

TEST(MutatorTest, RemoveCallDeletesVoidCall) {
  const std::string Src = R"(
declare void @clobber(ptr)

define i32 @f(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
)";
  auto M = applyKind(Src, MutationKind::RemoveCall, 1);
  ASSERT_NE(M, nullptr);
  std::string Out = printFunction(*M->getFunction("f"));
  EXPECT_EQ(Out.find("call"), std::string::npos) << Out;
}

TEST(MutatorTest, ShufflePermutesIndependentRange) {
  // Three independent instructions (the Listing 8 shape).
  const std::string Src = R"(
declare void @clobber(ptr)

define i32 @f(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
)";
  // Find a seed where the permutation is not the identity.
  bool SawChange = false;
  auto Orig = parseOk(Src);
  std::string Before = printFunction(*Orig->getFunction("f"));
  for (uint64_t Seed = 1; Seed <= 20 && !SawChange; ++Seed) {
    auto M = applyKind(Src, MutationKind::Shuffle, Seed, 1);
    if (!M)
      continue;
    SawChange = printFunction(*M->getFunction("f")) != Before;
  }
  EXPECT_TRUE(SawChange);
}

TEST(MutatorTest, ArithChangesSomething) {
  const std::string Src = R"(
define i32 @f(i32 %x) {
  %a = add nsw i32 %x, 16
  %b = mul i32 %a, 3
  ret i32 %b
}
)";
  auto Orig = parseOk(Src);
  std::string Before = printModule(*Orig);
  unsigned Changed = 0;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    auto M = applyKind(Src, MutationKind::Arith, Seed, 1);
    ASSERT_NE(M, nullptr);
    Changed += printModule(*M) != Before;
  }
  EXPECT_GE(Changed, 8u); // operand swap of commutative op may print equal
}

TEST(MutatorTest, UseReplacementKeepsDominance) {
  const std::string Src = R"(
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = mul i32 %a, %x
  %c = sub i32 %b, %a
  ret i32 %c
}
)";
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    auto M = applyKind(Src, MutationKind::Use, Seed, 1);
    ASSERT_NE(M, nullptr);
    EXPECT_EQ(verifyError(*M->getFunction("f")), "")
        << printModule(*M) << "seed " << Seed;
  }
}

TEST(MutatorTest, MoveRepairsBrokenUses) {
  // Moving %c to the top must substitute its operands (Listing 12).
  const std::string Src = R"(
define i32 @f(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
)";
  unsigned Moves = 0;
  for (uint64_t Seed = 1; Seed <= 30; ++Seed) {
    auto M = applyKind(Src, MutationKind::Move, Seed, 1);
    if (!M)
      continue;
    ++Moves;
    EXPECT_EQ(verifyError(*M->getFunction("f")), "")
        << printModule(*M) << "seed " << Seed;
  }
  EXPECT_GT(Moves, 10u);
}

TEST(MutatorTest, BitwidthCreatesCastBoundaries) {
  // Listing 13: %c is recreated at another width between trunc/ext casts.
  const std::string Src = R"(
define i32 @f(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}
)";
  unsigned SawCasts = 0;
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    auto M = applyKind(Src, MutationKind::Bitwidth, Seed, 1);
    ASSERT_NE(M, nullptr) << "bitwidth mutation should apply";
    Function *F = M->getFunction("f");
    EXPECT_EQ(verifyError(*F), "") << printModule(*M);
    std::string Out = printFunction(*F);
    if (Out.find("trunc") != std::string::npos ||
        Out.find("zext") != std::string::npos ||
        Out.find("sext") != std::string::npos)
      ++SawCasts;
    // The original i32 sub must be gone or replaced by a new-width twin.
    EXPECT_EQ(Out.find("sub i32 %a, %b"), std::string::npos) << Out;
  }
  EXPECT_EQ(SawCasts, 20u);
}

TEST(MutatorTest, MultiMutationComposes) {
  // §IV-I: several mutations apply in sequence and stay valid.
  const std::string Src = paperListingSeeds()[1]; // @test9 module
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    auto M = parseOk(Src);
    Function *F = M->getFunction("test9");
    ASSERT_NE(F, nullptr);
    OriginalFunctionInfo Info(*F);
    RandomGenerator RNG(Seed);
    MutationOptions Opts;
    Opts.MaxMutationsPerFunction = 5;
    Mutator Mut(RNG, Opts);
    MutantInfo MI(*F, Info);
    std::vector<MutationKind> Applied = Mut.mutateFunction(MI);
    EXPECT_GE(Applied.size(), 1u);
    EXPECT_EQ(verifyError(*F), "") << printModule(*M);
  }
}

//===----------------------------------------------------------------------===//
// The two-level info cache (§III-B).
//===----------------------------------------------------------------------===//

TEST(FunctionInfoTest, PreprocessingInventoriesConstants) {
  auto M = parseOk(paperListingSeeds()[0]); // t1_ult_slt_0: -16, 16, 144
  Function *F = M->getFunction("t1_ult_slt_0");
  OriginalFunctionInfo Info(*F);
  EXPECT_EQ(Info.literalConstants().size(), 3u);
}

TEST(FunctionInfoTest, ShuffleRangesPrecomputed) {
  auto M = parseOk(paperListingSeeds()[1]); // @test9: a, call, b independent
  Function *F = M->getFunction("test9");
  OriginalFunctionInfo Info(*F);
  ASSERT_EQ(Info.shuffleRanges().size(), 1u);
  EXPECT_EQ(Info.shuffleRanges()[0].size(), 3u);
}

TEST(FunctionInfoTest, OverlayTracksMutantPositions) {
  auto M = parseOk(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = add i32 %a, 2
  ret i32 %b
}
)");
  Function *F = M->getFunction("f");
  OriginalFunctionInfo Info(*F);
  MutantInfo MI(*F, Info);
  BasicBlock *BB = F->getEntryBlock();
  Instruction *A = BB->getInst(0), *B = BB->getInst(1);
  EXPECT_EQ(MI.positionOf(A), 0u);
  EXPECT_TRUE(MI.valueAvailableAt(A, BB, 1));
  EXPECT_FALSE(MI.valueAvailableAt(B, BB, 0));

  // Mutate: move B to the front; the overlay must see the new order after
  // invalidation, while the base info stays untouched.
  auto Owned = BB->take(B);
  BB->insert(0, std::move(Owned));
  MI.invalidateBlock(BB);
  EXPECT_EQ(MI.positionOf(B), 0u);
  EXPECT_FALSE(MI.valueAvailableAt(A, BB, 0));
  EXPECT_TRUE(MI.valueAvailableAt(B, BB, 1));
}

TEST(FunctionInfoTest, CrossBlockDominanceFromBaseMatrix) {
  auto M = parseOk(R"(
define i32 @f(i1 %c, i32 %x) {
entry:
  %e = add i32 %x, 1
  br i1 %c, label %a, label %b
a:
  %va = add i32 %e, 2
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ %va, %a ], [ %x, %b ]
  ret i32 %p
}
)");
  Function *F = M->getFunction("f");
  OriginalFunctionInfo Info(*F);
  MutantInfo MI(*F, Info);
  BasicBlock *Join = F->getBlock(3);
  Instruction *E = F->getEntryBlock()->getInst(0);
  Instruction *VA = F->getBlock(1)->getInst(0);
  EXPECT_TRUE(MI.valueAvailableAt(E, Join, 0));   // entry dominates join
  EXPECT_FALSE(MI.valueAvailableAt(VA, Join, 0)); // 'a' does not
}

//===----------------------------------------------------------------------===//
// Corpus sanity.
//===----------------------------------------------------------------------===//

TEST(CorpusTest, AllSeedsParseAndVerify) {
  for (const std::string &S : paperListingSeeds()) {
    auto M = parseOk(S);
    ASSERT_NE(M, nullptr);
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, Errors)) << S << Errors.front();
  }
  for (const NearMissSeed &S : nearMissSeeds()) {
    auto M = parseOk(S.Text);
    ASSERT_NE(M, nullptr) << S.IssueId;
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M, Errors)) << S.IssueId << Errors.front();
  }
}

TEST(CorpusTest, GeneratedModulesAreValidAndDeterministic) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    auto M1 = generateRandomModule(Seed, 3);
    auto M2 = generateRandomModule(Seed, 3);
    EXPECT_EQ(printModule(*M1), printModule(*M2));
    std::vector<std::string> Errors;
    EXPECT_TRUE(verifyModule(*M1, Errors))
        << Errors.front() << printModule(*M1);
  }
}

TEST(CorpusTest, CorpusFilesRespectSizeCap) {
  std::vector<std::string> Files = generateCorpusFiles(42, 50);
  EXPECT_EQ(Files.size(), 50u);
  for (const std::string &F : Files) {
    EXPECT_LE(F.size(), 2048u);
    std::string Err;
    EXPECT_NE(parseModule(F, Err), nullptr) << Err;
  }
}
