//===- tests/analysis_test.cpp - Dominance/KnownBits/ShuffleRanges tests ----===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/DominatorTree.h"
#include "analysis/KnownBits.h"
#include "analysis/ShuffleRanges.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

} // namespace

TEST(DomTreeTest, DiamondCFG) {
  auto M = parseOk(R"(
define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret i32 %x
}
)");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Entry = F->getBlock(0), *A = F->getBlock(1), *B = F->getBlock(2),
             *Join = F->getBlock(3);
  EXPECT_TRUE(DT.dominates(Entry, A));
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(A, Join));
  EXPECT_FALSE(DT.dominates(A, B));
  EXPECT_TRUE(DT.dominates(A, A)); // reflexive
  EXPECT_EQ(DT.getIDom(Join), Entry);
  EXPECT_EQ(DT.getIDom(A), Entry);
  EXPECT_EQ(DT.getIDom(Entry), nullptr);
}

TEST(DomTreeTest, LoopBackEdge) {
  auto M = parseOk(R"(
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inext, %body ]
  %done = icmp uge i32 %i, %n
  br i1 %done, label %exit, label %body
body:
  %inext = add i32 %i, 1
  br label %head
exit:
  ret i32 %i
}
)");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *Head = F->getBlock(1), *Body = F->getBlock(2),
             *Exit = F->getBlock(3);
  EXPECT_TRUE(DT.dominates(Head, Body));
  EXPECT_TRUE(DT.dominates(Head, Exit));
  EXPECT_FALSE(DT.dominates(Body, Head));
  EXPECT_EQ(DT.getIDom(Exit), Head);
}

TEST(DomTreeTest, UnreachableBlocks) {
  auto M = parseOk(R"(
define i32 @f(i32 %x) {
entry:
  ret i32 %x
island:
  br label %island2
island2:
  br label %island
}
)");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  EXPECT_TRUE(DT.isReachable(F->getBlock(0)));
  EXPECT_FALSE(DT.isReachable(F->getBlock(1)));
  EXPECT_FALSE(DT.isReachable(F->getBlock(2)));
  EXPECT_EQ(DT.rpo().size(), 1u);
}

TEST(DomTreeTest, ValueAvailability) {
  auto M = parseOk(R"(
define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = add i32 %a, 2
  ret i32 %b
}
)");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  BasicBlock *BB = F->getEntryBlock();
  Instruction *A = BB->getInst(0), *B = BB->getInst(1);
  // Constants and arguments everywhere.
  EXPECT_TRUE(DT.valueAvailableAt(F->getArg(0), BB, 0));
  // %a available at positions 1 and 2, not at 0.
  EXPECT_FALSE(DT.valueAvailableAt(A, BB, 0));
  EXPECT_TRUE(DT.valueAvailableAt(A, BB, 1));
  EXPECT_TRUE(DT.valueAvailableAt(A, BB, 2));
  EXPECT_FALSE(DT.valueAvailableAt(B, BB, 1));
  // dominatesUse for the operands actually used.
  EXPECT_TRUE(DT.dominatesUse(A, B, 0));
  EXPECT_FALSE(DT.dominatesUse(B, A, 0));
}

TEST(DomTreeTest, PhiUsesCheckedAtIncomingEdge) {
  auto M = parseOk(R"(
define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %join
a:
  %v = add i32 %x, 1
  br label %join
join:
  %p = phi i32 [ %v, %a ], [ %x, %entry ]
  ret i32 %p
}
)");
  Function *F = M->getFunction("f");
  DominatorTree DT(*F);
  auto *Phi = cast<PhiNode>(F->getBlock(2)->getInst(0));
  Instruction *V = F->getBlock(1)->getInst(0);
  // %v does not dominate the phi's block, but it does dominate the end of
  // its incoming edge — the use is legal.
  EXPECT_FALSE(DT.dominates(V->getParent(), Phi->getParent()));
  EXPECT_TRUE(DT.dominatesUse(V, Phi, 0));
}

TEST(KnownBitsTest, ConstantsAndMasks) {
  auto M = parseOk(R"(
define i8 @f(i8 %x) {
  %lo = and i8 %x, 15
  %hi = or i8 %lo, 32
  ret i8 %hi
}
)");
  Function *F = M->getFunction("f");
  Instruction *Lo = F->getEntryBlock()->getInst(0);
  Instruction *Hi = F->getEntryBlock()->getInst(1);

  KnownBits KLo = computeKnownBits(Lo);
  EXPECT_EQ(KLo.Zero.getZExtValue(), 0xF0u); // top nibble known zero
  EXPECT_TRUE(KLo.One.isZero());

  KnownBits KHi = computeKnownBits(Hi);
  EXPECT_EQ(KHi.One.getZExtValue(), 0x20u);
  EXPECT_EQ(KHi.Zero.getZExtValue(), 0xD0u);
  EXPECT_TRUE(KHi.isNonNegative());
}

TEST(KnownBitsTest, ShiftsAndExtensions) {
  auto M = parseOk(R"(
define i16 @f(i8 %x) {
  %z = zext i8 %x to i16
  %s = shl i16 %z, 4
  ret i16 %s
}
)");
  Function *F = M->getFunction("f");
  Instruction *S = F->getEntryBlock()->getInst(1);
  KnownBits K = computeKnownBits(S);
  // zext gives 8 known-zero top bits; shl 4 gives 4 known-zero low bits.
  EXPECT_EQ(K.Zero.getZExtValue() & 0xF, 0xFu);
  EXPECT_EQ(K.Zero.getZExtValue() >> 12, 0xFu);
}

TEST(KnownBitsTest, NoCommonBits) {
  auto M = parseOk(R"(
define i8 @f(i8 %x, i8 %y) {
  %lo = and i8 %x, 15
  %hi = and i8 %y, -16
  %both = and i8 %x, 60
  ret i8 %lo
}
)");
  Function *F = M->getFunction("f");
  Instruction *Lo = F->getEntryBlock()->getInst(0);
  Instruction *Hi = F->getEntryBlock()->getInst(1);
  Instruction *Both = F->getEntryBlock()->getInst(2);
  EXPECT_TRUE(haveNoCommonBits(Lo, Hi));
  EXPECT_FALSE(haveNoCommonBits(Lo, Both)); // 15 & 60 != 0
}

TEST(ShuffleRangeTest, PaperListing8Shape) {
  auto M = parseOk(R"(
declare void @clobber(ptr)

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q
  call void @clobber(ptr %p)
  %b = load i32, ptr %q
  %c = sub i32 %a, %b
  ret i32 %c
}
)");
  Function *F = M->getFunction("test9");
  std::vector<ShuffleRange> Ranges = computeShuffleRanges(*F);
  // %a, call, %b have no mutual SSA deps: one range of size 3. %c uses %a
  // and %b so it cannot join.
  ASSERT_EQ(Ranges.size(), 1u);
  EXPECT_EQ(Ranges[0].Begin, 0u);
  EXPECT_EQ(Ranges[0].End, 3u);
  EXPECT_TRUE(isShufflable(*F->getEntryBlock(), 0, 3));
  EXPECT_FALSE(isShufflable(*F->getEntryBlock(), 0, 4));
}

TEST(ShuffleRangeTest, DependencyChainHasNoRanges) {
  auto M = parseOk(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 1
  %b = add i32 %a, 2
  %c = add i32 %b, 3
  ret i32 %c
}
)");
  std::vector<ShuffleRange> Ranges =
      computeShuffleRanges(*M->getFunction("f"));
  EXPECT_TRUE(Ranges.empty());
}

TEST(ShuffleRangeTest, PhisAndTerminatorsExcluded) {
  auto M = parseOk(R"(
define i32 @f(i1 %c, i32 %x, i32 %y) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ %x, %a ], [ %y, %b ]
  %q = phi i32 [ %y, %a ], [ %x, %b ]
  %m = mul i32 %x, %y
  %n = add i32 %x, %y
  ret i32 %m
}
)");
  Function *F = M->getFunction("f");
  std::vector<ShuffleRange> Ranges = computeShuffleRanges(*F);
  // The only range is [%m, %n] in join (index 2..4); phis excluded.
  ASSERT_EQ(Ranges.size(), 1u);
  EXPECT_EQ(Ranges[0].BlockIdx, 3u);
  EXPECT_EQ(Ranges[0].Begin, 2u);
  EXPECT_EQ(Ranges[0].End, 4u);
}
