//===- tests/profiler_test.cpp - Cost-attribution profiler tests ------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the deep cost-attribution layer: the stable FNV key
/// hash, the (cost desc, key asc) total order, the bounded top-K tracker's
/// record/evict/merge semantics and its exact-merge guarantee, the
/// sampling profiler folding synthetic live-span stacks into collapsed
/// stacks, the JSON/flamegraph serializers, and — at engine scale — the
/// headline invariant that a -j4 campaign's merged top-K table serializes
/// byte-identically to -j1's. The concurrent record/snapshot tests double
/// as the TSan targets for the lock-free live-stack path.
///
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"

#include "core/CampaignEngine.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "support/TraceRecorder.h"

#include <gtest/gtest.h>
#include <sstream>
#include <thread>

using namespace alive;

namespace {

QueryCostSample sample(uint64_t Key, uint64_t Seed, uint64_t Decisions,
                       uint64_t Propagations = 0, uint64_t Conflicts = 0) {
  QueryCostSample S;
  S.KeyHash = Key;
  S.Function = "f";
  S.Verdict = "refines";
  S.Seed = Seed;
  S.Symbolic = Decisions + Propagations + Conflicts > 0;
  S.Decisions = Decisions;
  S.Propagations = Propagations;
  S.Conflicts = Conflicts;
  return S;
}

std::string topJSON(const std::vector<QueryCost> &Top) {
  std::ostringstream OS;
  writeTopQueriesJSON(OS, Top);
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Key hash and ranking order.
//===----------------------------------------------------------------------===//

TEST(ProfilerTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors: the key hash must be stable across
  // platforms and standard libraries (std::hash is neither).
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ProfilerTest, RankingIsCostDescThenKeyAsc) {
  QueryCost A, B;
  A.KeyHash = 10;
  A.Decisions = 5;
  B.KeyHash = 2;
  B.Decisions = 3;
  EXPECT_TRUE(queryCostRanksBefore(A, B));  // higher cost wins
  EXPECT_FALSE(queryCostRanksBefore(B, A));
  B.Decisions = 5;
  EXPECT_TRUE(queryCostRanksBefore(B, A));  // tie -> lower key wins
  EXPECT_FALSE(queryCostRanksBefore(A, B));
  EXPECT_FALSE(queryCostRanksBefore(A, A)); // strict
}

//===----------------------------------------------------------------------===//
// QueryCostTracker.
//===----------------------------------------------------------------------===//

TEST(ProfilerTest, TrackerAccumulatesOccurrencesNotCost) {
  QueryCostTracker T(4);
  T.record(sample(7, 100, 10, 20, 30));
  T.record(sample(7, 101, 10, 20, 30)); // cache-hit replay: same counters
  auto Top = T.top();
  ASSERT_EQ(Top.size(), 1u);
  EXPECT_EQ(Top[0].Count, 2u);
  // Per-occurrence cost, never occurrence-weighted: this is what makes
  // the per-worker trackers merge exactly.
  EXPECT_EQ(Top[0].costUnits(), 60u);
  EXPECT_EQ(Top[0].FirstSeed, 100u);
}

TEST(ProfilerTest, TrackerMinSeedAttribution) {
  QueryCostTracker T(4);
  QueryCostSample Late = sample(7, 200, 5);
  Late.Function = "late";
  QueryCostSample Early = sample(7, 50, 5);
  Early.Function = "early";
  T.record(Late);
  T.record(Early);
  auto Top = T.top();
  ASSERT_EQ(Top.size(), 1u);
  EXPECT_EQ(Top[0].Function, "early");
  EXPECT_EQ(Top[0].FirstSeed, 50u);
}

TEST(ProfilerTest, TrackerEvictsWorstAtCapacity) {
  QueryCostTracker T(2);
  T.record(sample(1, 1, 100));
  T.record(sample(2, 2, 50));
  T.record(sample(3, 3, 75)); // evicts key 2 (the cheapest)
  EXPECT_EQ(T.evicted(), 1u);
  auto Top = T.top();
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0].KeyHash, 1u);
  EXPECT_EQ(Top[1].KeyHash, 3u);
  // A cheap newcomer is itself the eviction victim.
  T.record(sample(4, 4, 1));
  EXPECT_EQ(T.evicted(), 2u);
  EXPECT_EQ(T.top().size(), 2u);
}

TEST(ProfilerTest, ShardedTrackersMergeToTheGlobalTopK) {
  // 40 keys with distinct costs, dealt round-robin across 4 "workers"
  // with K=8 trackers; every key recurs on every worker that saw it.
  // The merged top-8 must equal the unsharded tracker's top-8, entry for
  // entry — the -j1 == -jN guarantee at unit scale.
  constexpr unsigned K = 8;
  QueryCostTracker Whole(K);
  QueryCostTracker Shards[4] = {QueryCostTracker(K), QueryCostTracker(K),
                                QueryCostTracker(K), QueryCostTracker(K)};
  for (uint64_t I = 0; I != 40; ++I) {
    QueryCostSample S = sample(1000 + I, 10 + I, (I * 37) % 101, I % 7);
    Whole.record(S);
    Whole.record(S);
    Shards[I % 4].record(S);
    Shards[I % 4].record(S);
  }
  // Merge in two different orders; both must serialize identically.
  QueryCostTracker MergedFwd(K), MergedRev(K);
  for (int I = 0; I != 4; ++I)
    MergedFwd.merge(Shards[I]);
  for (int I = 3; I >= 0; --I)
    MergedRev.merge(Shards[I]);
  std::string Expect = topJSON(Whole.top());
  EXPECT_EQ(topJSON(MergedFwd.top()), Expect);
  EXPECT_EQ(topJSON(MergedRev.top()), Expect);
}

TEST(ProfilerTest, ConcurrentRecordAndSnapshot) {
  // TSan target: four recording threads against a snapshotting observer.
  QueryCostTracker T(16);
  std::atomic<bool> Stop{false};
  std::thread Observer([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      auto Top = T.top();
      for (size_t I = 1; I < Top.size(); ++I)
        EXPECT_TRUE(queryCostRanksBefore(Top[I - 1], Top[I]));
    }
  });
  std::vector<std::thread> Writers;
  for (int W = 0; W != 4; ++W)
    Writers.emplace_back([&T, W] {
      for (uint64_t I = 0; I != 2000; ++I)
        T.record(sample(I % 64, W * 10000 + I, I % 13, I % 5));
    });
  for (auto &Th : Writers)
    Th.join();
  Stop.store(true, std::memory_order_relaxed);
  Observer.join();
  EXPECT_EQ(T.top().size(), 16u);
}

//===----------------------------------------------------------------------===//
// SamplingProfiler.
//===----------------------------------------------------------------------===//

TEST(ProfilerTest, SamplerFoldsSyntheticSpans) {
  TraceRecorder R;
  R.setLiveStack(true);
  R.enterSpan("iteration");
  R.enterSpan("verify");

  SamplingProfiler SP(1);
  SP.attach("w0", &R);
  SP.start();
  while (SP.samples() < 5)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  SP.stop();
  R.exitSpan();
  R.exitSpan();

  auto Folded = SP.collapsed();
  ASSERT_EQ(Folded.size(), 1u);
  EXPECT_EQ(Folded.begin()->first, "w0;iteration;verify");
  EXPECT_GE(Folded.begin()->second, 5u);
  // Every sample landed in some stack.
  uint64_t Total = 0;
  for (const auto &[_, N] : Folded)
    Total += N;
  EXPECT_EQ(Total, SP.samples());
}

TEST(ProfilerTest, SamplerSkipsIdleWorkers) {
  // An attached recorder with an empty live stack must produce no "idle"
  // frames and no samples: the flamegraph shows work, not waiting.
  TraceRecorder R;
  R.setLiveStack(true);
  SamplingProfiler SP(1);
  SP.attach("w0", &R);
  SP.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SP.stop();
  EXPECT_TRUE(SP.collapsed().empty());
  EXPECT_EQ(SP.samples(), 0u);
}

TEST(ProfilerTest, SamplerConcurrentWithSpanChurn) {
  // TSan target: the sampler reads the live stack lock-free while the
  // owning thread pushes and pops at full speed.
  TraceRecorder R;
  R.setLiveStack(true);
  SamplingProfiler SP(1);
  SP.attach("w0", &R);
  SP.start();
  std::thread Worker([&R] {
    for (int I = 0; I != 20000; ++I) {
      R.enterSpan("iteration");
      R.enterSpan(I % 2 ? "optimize" : "verify");
      R.exitSpan();
      R.exitSpan();
    }
  });
  Worker.join();
  SP.stop();
  // Whatever was sampled must be a prefix-consistent stack rooted at the
  // worker label.
  for (const auto &[Stack, N] : SP.collapsed()) {
    EXPECT_EQ(Stack.rfind("w0;iteration", 0), 0u) << Stack;
    EXPECT_GT(N, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Serialization.
//===----------------------------------------------------------------------===//

TEST(ProfilerTest, TopQueriesJSONShape) {
  QueryCostTracker T(4);
  T.record(sample(0xabcdef, 42, 3, 2, 1));
  std::string J = topJSON(T.top());
  EXPECT_NE(J.find("\"rank\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"key\": \"0000000000abcdef\""), std::string::npos);
  EXPECT_NE(J.find("\"cost\": 6"), std::string::npos);
  EXPECT_NE(J.find("\"decisions\": 3"), std::string::npos);
  EXPECT_NE(J.find("\"propagations\": 2"), std::string::npos);
  EXPECT_NE(J.find("\"conflicts\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"first_seed\": 42"), std::string::npos);
  EXPECT_NE(J.find("\"symbolic\": true"), std::string::npos);
}

TEST(ProfilerTest, FlamegraphAndCollapsedFormats) {
  CampaignProfile P;
  P.Enabled = true;
  P.SamplingIntervalMs = 5;
  P.Collapsed = {{"w0;iteration;verify", 7}, {"w1;iteration;optimize", 3}};
  P.Samples = 10;

  std::ostringstream FG;
  writeFlamegraphJSON(FG, P);
  EXPECT_NE(FG.str().find("\"interval_ms\": 5"), std::string::npos);
  EXPECT_NE(FG.str().find("\"samples\": 10"), std::string::npos);
  EXPECT_NE(FG.str().find("{\"stack\": \"w0;iteration;verify\", \"count\": 7}"),
            std::string::npos);

  std::ostringstream CS;
  writeCollapsedStacks(CS, P.Collapsed);
  EXPECT_EQ(CS.str(), "w0;iteration;verify 7\nw1;iteration;optimize 3\n");
}

//===----------------------------------------------------------------------===//
// Engine scale: the -j1 == -j4 byte-identity of the merged table.
//===----------------------------------------------------------------------===//

namespace {

const char *ProfiledCorpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

std::string runProfiledCampaign(unsigned Jobs) {
  std::string Err;
  auto M = parseModule(ProfiledCorpus, Err);
  EXPECT_NE(M, nullptr) << Err;
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = 60;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  Opts.Bugs.enable(BugId::PR52884);
  Opts.Bugs.enable(BugId::PR50693);
  Opts.Profile.Enabled = true;
  Opts.Profile.TopK = 8;
  Opts.Profile.SamplingIntervalMs = 5;
  CampaignEngine Engine(Opts, Jobs);
  EXPECT_GT(Engine.loadModule(std::move(M)), 0u);
  Engine.run();
  const CampaignProfile &P = Engine.profile();
  EXPECT_TRUE(P.Enabled);
  EXPECT_FALSE(P.TopQueries.empty());
  // Whatever got tracked is internally consistent and strictly ordered.
  for (size_t I = 0; I < P.TopQueries.size(); ++I) {
    const QueryCost &Q = P.TopQueries[I];
    EXPECT_GT(Q.Count, 0u);
    EXPECT_FALSE(Q.Function.empty());
    if (I) {
      EXPECT_TRUE(queryCostRanksBefore(P.TopQueries[I - 1], Q));
    }
  }
  std::ostringstream OS;
  writeTopQueriesJSON(OS, P.TopQueries);
  return OS.str();
}

} // namespace

TEST(ProfilerTest, MergedTopKIsByteIdenticalAcrossWorkerCounts) {
  std::string J1 = runProfiledCampaign(1);
  std::string J4 = runProfiledCampaign(4);
  EXPECT_EQ(J1, J4);
}
