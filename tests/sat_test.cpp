//===- tests/sat_test.cpp - SAT solver unit & property tests ---------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SatSolver.h"
#include "support/RandomGenerator.h"

#include <gtest/gtest.h>

using namespace alive;

TEST(SatSolverTest, TrivialSat) {
  SatSolver S;
  int A = S.newVar(), B = S.newVar();
  S.addClause(A, B);
  S.addClause(-A);
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(SatSolverTest, TrivialUnsat) {
  SatSolver S;
  int A = S.newVar();
  S.addClause(A);
  S.addClause(-A);
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, EmptyClauseIsUnsat) {
  SatSolver S;
  (void)S.newVar();
  S.addClause(std::vector<Lit>{});
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, EmptyFormulaIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatSolverTest, TautologyIgnored) {
  SatSolver S;
  int A = S.newVar(), B = S.newVar();
  S.addClause(A, -A, B);
  S.addClause(-B);
  EXPECT_EQ(S.solve(), SatSolver::Result::Sat);
}

TEST(SatSolverTest, ChainedImplications) {
  // a -> b -> c -> ... -> z, with a forced true and z forced false: UNSAT.
  SatSolver S;
  const int N = 50;
  std::vector<int> V;
  for (int I = 0; I != N; ++I)
    V.push_back(S.newVar());
  for (int I = 0; I + 1 != N; ++I)
    S.addClause(-V[I], V[I + 1]);
  S.addClause(V[0]);
  S.addClause(-V[N - 1]);
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
}

TEST(SatSolverTest, PigeonholePrinciple) {
  // 4 pigeons into 3 holes: classic small UNSAT requiring real search.
  SatSolver S;
  const int P = 4, H = 3;
  int Var[P][H];
  for (int I = 0; I != P; ++I)
    for (int J = 0; J != H; ++J)
      Var[I][J] = S.newVar();
  for (int I = 0; I != P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J != H; ++J)
      C.push_back(Var[I][J]);
    S.addClause(C);
  }
  for (int J = 0; J != H; ++J)
    for (int I1 = 0; I1 != P; ++I1)
      for (int I2 = I1 + 1; I2 != P; ++I2)
        S.addClause(-Var[I1][J], -Var[I2][J]);
  EXPECT_EQ(S.solve(), SatSolver::Result::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(SatSolverTest, ConflictBudgetYieldsUnknown) {
  // Pigeonhole 8/7 is hard enough to exceed a budget of 1 conflict.
  SatSolver S;
  const int P = 8, H = 7;
  std::vector<std::vector<int>> Var(P, std::vector<int>(H));
  for (int I = 0; I != P; ++I)
    for (int J = 0; J != H; ++J)
      Var[I][J] = S.newVar();
  for (int I = 0; I != P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J != H; ++J)
      C.push_back(Var[I][J]);
    S.addClause(C);
  }
  for (int J = 0; J != H; ++J)
    for (int I1 = 0; I1 != P; ++I1)
      for (int I2 = I1 + 1; I2 != P; ++I2)
        S.addClause(-Var[I1][J], -Var[I2][J]);
  EXPECT_EQ(S.solve(/*ConflictBudget=*/1), SatSolver::Result::Unknown);
}

namespace {

/// Brute-force CNF oracle for <= ~20 variables.
bool bruteForceSat(int NumVars, const std::vector<std::vector<Lit>> &Clauses) {
  for (uint64_t Assign = 0; Assign != (1ULL << NumVars); ++Assign) {
    bool All = true;
    for (const auto &C : Clauses) {
      bool Any = false;
      for (Lit L : C) {
        bool V = (Assign >> (std::abs(L) - 1)) & 1;
        if ((L > 0) == V) {
          Any = true;
          break;
        }
      }
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

} // namespace

// Property: solver verdicts match brute force on random 3-CNF near the
// phase-transition density, and Sat models actually satisfy the formula.
class Random3CnfTest : public ::testing::TestWithParam<int> {};

TEST_P(Random3CnfTest, MatchesBruteForce) {
  RandomGenerator RNG(GetParam());
  for (int Round = 0; Round != 60; ++Round) {
    int NumVars = 5 + (int)RNG.below(10);
    int NumClauses = (int)(NumVars * (3.0 + (int)RNG.below(3)));
    std::vector<std::vector<Lit>> Clauses;
    SatSolver S;
    for (int V = 0; V != NumVars; ++V)
      (void)S.newVar();
    for (int C = 0; C != NumClauses; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K != 3; ++K) {
        int V = 1 + (int)RNG.below(NumVars);
        Clause.push_back(RNG.flip() ? V : -V);
      }
      Clauses.push_back(Clause);
      S.addClause(Clause);
    }
    bool Expected = bruteForceSat(NumVars, Clauses);
    SatSolver::Result R = S.solve();
    ASSERT_EQ(R == SatSolver::Result::Sat, Expected)
        << "seed " << GetParam() << " round " << Round;
    if (R == SatSolver::Result::Sat) {
      // The model must satisfy every clause.
      for (const auto &C : Clauses) {
        bool Any = false;
        for (Lit L : C)
          Any |= (L > 0) == S.modelValue(std::abs(L));
        ASSERT_TRUE(Any) << "model does not satisfy clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3CnfTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));
