//===- tests/faultplane_test.cpp - Fault plane / retry / atomic IO ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the robustness support layer: the deterministic
/// fault-injection plane (spec grammar, trigger modes, counters), the
/// bounded-exponential-backoff retry policy, and the tmp+fsync+rename
/// atomic file writer whose torn-write guarantee everything durable rides
/// on.
///
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"
#include "support/FaultPlane.h"
#include "support/Retry.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace alive;

namespace {

/// FaultPlane is process-global; every test starts and ends disarmed so
/// the suite stays order-independent.
struct FaultPlaneTest : ::testing::Test {
  void SetUp() override { FaultPlane::instance().reset(); }
  void TearDown() override { FaultPlane::instance().reset(); }
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

} // namespace

//===----------------------------------------------------------------------===//
// Fault plane: spec grammar.
//===----------------------------------------------------------------------===//

TEST_F(FaultPlaneTest, RejectsUnknownPointsAndMalformedSpecs) {
  FaultPlane &F = FaultPlane::instance();
  std::string Err;
  // Unknown point names are config errors: a chaos run that silently
  // armed nothing would assert nothing.
  EXPECT_FALSE(F.arm("no.such.point:nth:1", Err));
  EXPECT_NE(Err.find("no.such.point"), std::string::npos) << Err;
  EXPECT_FALSE(F.armed());

  for (const char *Bad :
       {"checkpoint.write", "checkpoint.write:", "checkpoint.write:nth",
        "checkpoint.write:nth:0", "checkpoint.write:nth:x",
        "checkpoint.write:every:0", "checkpoint.write:p:2",
        "checkpoint.write:p:-1", "checkpoint.write:banana:3"}) {
    Err.clear();
    EXPECT_FALSE(F.arm(Bad, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
    EXPECT_FALSE(F.armed()) << Bad;
  }
}

TEST_F(FaultPlaneTest, EveryKnownPointArmsAndUnarmedPointsAreFree) {
  FaultPlane &F = FaultPlane::instance();
  std::string Err;
  for (const std::string &P : FaultPlane::knownPoints())
    ASSERT_TRUE(F.arm(P + ":nth:1", Err)) << P << ": " << Err;
  F.reset();
  EXPECT_FALSE(F.armed());
  // Disarmed, faultAt is inert and counts nothing.
  EXPECT_FALSE(faultAt("checkpoint.write"));
  EXPECT_TRUE(F.counters().empty());
}

//===----------------------------------------------------------------------===//
// Fault plane: trigger modes and counters.
//===----------------------------------------------------------------------===//

TEST_F(FaultPlaneTest, NthFiresExactlyOnce) {
  FaultPlane &F = FaultPlane::instance();
  std::string Err;
  ASSERT_TRUE(F.arm("checkpoint.write:nth:3", Err)) << Err;
  std::vector<bool> Fired;
  for (int I = 0; I < 8; ++I)
    Fired.push_back(faultAt("checkpoint.write"));
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false,
                                      false, false, false}));
  auto C = F.counters();
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].Point, "checkpoint.write");
  EXPECT_EQ(C[0].Spec, "nth:3");
  EXPECT_EQ(C[0].Calls, 8u);
  EXPECT_EQ(C[0].Triggers, 1u);
}

TEST_F(FaultPlaneTest, EveryKthFiresPeriodically) {
  FaultPlane &F = FaultPlane::instance();
  std::string Err;
  ASSERT_TRUE(F.arm("http.send:every:2", Err)) << Err;
  unsigned Triggers = 0;
  for (int I = 0; I < 10; ++I)
    Triggers += faultAt("http.send");
  EXPECT_EQ(Triggers, 5u);
  // A different, unarmed point is untouched (and uncounted).
  EXPECT_FALSE(faultAt("http.accept"));
  ASSERT_EQ(F.counters().size(), 1u);
}

TEST_F(FaultPlaneTest, ProbabilityStreamIsSeedDeterministic) {
  FaultPlane &F = FaultPlane::instance();
  std::string Err;
  auto Draw = [&](uint64_t Seed) {
    F.reset();
    F.setSeed(Seed);
    EXPECT_TRUE(F.arm("corpus.read:p:0.5", Err)) << Err;
    std::vector<bool> Seq;
    for (int I = 0; I < 64; ++I)
      Seq.push_back(faultAt("corpus.read"));
    return Seq;
  };
  std::vector<bool> A = Draw(42), B = Draw(42), C = Draw(43);
  // Identical seeds draw identical fault sequences (chaos runs must be
  // reproducible); a different seed draws a different one.
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  // p:0.5 over 64 draws fires somewhere strictly between never and always.
  size_t Fires = (size_t)std::count(A.begin(), A.end(), true);
  EXPECT_GT(Fires, 0u);
  EXPECT_LT(Fires, 64u);
}

TEST_F(FaultPlaneTest, ArmReplacesThePreviousTable) {
  FaultPlane &F = FaultPlane::instance();
  std::string Err;
  ASSERT_TRUE(F.arm("checkpoint.write:every:1", Err)) << Err;
  EXPECT_TRUE(faultAt("checkpoint.write"));
  ASSERT_TRUE(F.arm("report.write:every:1", Err)) << Err;
  EXPECT_FALSE(faultAt("checkpoint.write"));
  EXPECT_TRUE(faultAt("report.write"));
  ASSERT_EQ(F.counters().size(), 1u);
  EXPECT_EQ(F.counters()[0].Point, "report.write");
}

//===----------------------------------------------------------------------===//
// Retry: bounded exponential backoff.
//===----------------------------------------------------------------------===//

TEST(RetryTest, DelaysDoubleFromBaseAndCapAtMax) {
  RetryPolicy P;
  P.MaxAttempts = 16;
  P.BaseDelaySeconds = 0.1;
  P.MaxDelaySeconds = 1.0;
  P.JitterFraction = 0; // exact doubling, no jitter
  RetryState S(P);
  std::vector<double> Want = {0.1, 0.2, 0.4, 0.8, 1.0, 1.0};
  for (double W : Want)
    EXPECT_DOUBLE_EQ(S.nextDelaySeconds(), W);
}

TEST(RetryTest, JitterStaysBoundedAndIsDeterministic) {
  RetryPolicy P;
  P.MaxAttempts = 100;
  P.BaseDelaySeconds = 0.5;
  P.MaxDelaySeconds = 0.5;
  P.JitterFraction = 0.1;
  RetryState A(P, /*StreamTag=*/7), B(P, /*StreamTag=*/7);
  for (int I = 0; I < 32; ++I) {
    double DA = A.nextDelaySeconds();
    // Two identically-configured sequences back off on identical
    // schedules — the reproducibility the chaos matrix depends on.
    EXPECT_DOUBLE_EQ(DA, B.nextDelaySeconds());
    EXPECT_GE(DA, 0.45);
    EXPECT_LE(DA, 0.55);
  }
}

TEST(RetryTest, BudgetExhaustsAndProgressRefillsIt) {
  RetryPolicy P;
  P.MaxAttempts = 3;
  P.BaseDelaySeconds = 0.01;
  RetryState S(P);
  EXPECT_FALSE(S.exhausted());
  S.nextDelaySeconds();
  S.nextDelaySeconds();
  EXPECT_FALSE(S.exhausted());
  S.nextDelaySeconds();
  EXPECT_TRUE(S.exhausted());
  // Real progress (an advanced checkpoint) refills the budget: a child
  // must never be abandoned over ancient, unrelated failures.
  S.noteProgress();
  EXPECT_FALSE(S.exhausted());
  EXPECT_EQ(S.attempts(), 0u);
}

TEST(RetryTest, DescribePolicyNamesTheKnobs) {
  RetryPolicy P;
  std::string D = describeRetryPolicy(P);
  EXPECT_NE(D.find("5"), std::string::npos) << D;
  EXPECT_NE(D.find("0.05"), std::string::npos) << D;
}

//===----------------------------------------------------------------------===//
// Atomic file writes: the torn-write guarantee.
//===----------------------------------------------------------------------===//

TEST_F(FaultPlaneTest, AtomicWriteReplacesContentAndLeavesNoTmp) {
  std::string Dir = ::testing::TempDir() + "amr_atomicfile";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  std::string Path = Dir + "/artifact.json";
  std::string Err;
  ASSERT_TRUE(writeFileAtomicDurable(Path, "v1", "report", Err)) << Err;
  EXPECT_EQ(slurp(Path), "v1");
  ASSERT_TRUE(writeFileAtomicDurable(Path, "v2", "report", Err)) << Err;
  EXPECT_EQ(slurp(Path), "v2");
  EXPECT_FALSE(std::filesystem::exists(Path + ".tmp"));
  std::filesystem::remove_all(Dir);
}

TEST_F(FaultPlaneTest, FailedWriteNeverTearsTheOldFile) {
  // The satellite guarantee: a fault at ANY stage of the write path
  // (write, fsync, rename) leaves the previously-published bytes intact
  // under the final name — old or new, never torn.
  std::string Dir = ::testing::TempDir() + "amr_atomicfile_torn";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  std::string Path = Dir + "/artifact.json";
  std::string Old = "{\"generation\": 1, \"payload\": \"old bytes\"}";
  std::string Err;
  ASSERT_TRUE(writeFileAtomicDurable(Path, Old, "report", Err)) << Err;

  FaultPlane &F = FaultPlane::instance();
  for (const char *Stage :
       {"report.write", "report.fsync", "report.rename"}) {
    ASSERT_TRUE(F.arm(std::string(Stage) + ":every:1", Err)) << Err;
    Err.clear();
    EXPECT_FALSE(writeFileAtomicDurable(Path, "NEW BYTES, half of which "
                                              "would tear the artifact",
                                        "report", Err))
        << Stage;
    EXPECT_NE(Err.find(Path), std::string::npos) << Stage << ": " << Err;
    EXPECT_EQ(slurp(Path), Old) << Stage;
    EXPECT_FALSE(std::filesystem::exists(Path + ".tmp")) << Stage;
    F.reset();
  }
  // Injected write faults report out-of-space, the degradation trigger.
  ASSERT_TRUE(F.arm("report.write:every:1", Err)) << Err;
  Err.clear();
  EXPECT_FALSE(writeFileAtomicDurable(Path, "x", "report", Err));
  EXPECT_TRUE(isNoSpaceError(Err)) << Err;
  F.reset();
  std::filesystem::remove_all(Dir);
}
