//===- tests/apint_test.cpp - APInt unit & property tests ------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/APInt.h"
#include "support/RandomGenerator.h"

#include <gtest/gtest.h>

using namespace alive;

TEST(APIntTest, BasicConstruction) {
  APInt A(32, 42);
  EXPECT_EQ(A.getBitWidth(), 32u);
  EXPECT_EQ(A.getZExtValue(), 42u);
  EXPECT_FALSE(A.isZero());
  EXPECT_TRUE(APInt(8, 0).isZero());
  EXPECT_TRUE(APInt(8, 1).isOne());
}

TEST(APIntTest, SignedConstructionSignExtends) {
  APInt A(64, (uint64_t)-5, /*IsSigned=*/true);
  EXPECT_EQ(A.getSExtValue(), -5);
  APInt B(128, (uint64_t)-1, /*IsSigned=*/true);
  EXPECT_TRUE(B.isAllOnes());
}

TEST(APIntTest, WidthMasking) {
  APInt A(4, 0xFF);
  EXPECT_EQ(A.getZExtValue(), 0xFu);
  APInt B(1, 3);
  EXPECT_EQ(B.getZExtValue(), 1u);
}

TEST(APIntTest, SpecialValues) {
  EXPECT_EQ(APInt::getSignedMaxValue(8).getSExtValue(), 127);
  EXPECT_EQ(APInt::getSignedMinValue(8).getSExtValue(), -128);
  EXPECT_EQ(APInt::getMaxValue(8).getZExtValue(), 255u);
  EXPECT_TRUE(APInt::getSignedMinValue(8).isNegative());
  EXPECT_TRUE(APInt::getSignedMinValue(8).isSignedMinValue());
  EXPECT_TRUE(APInt::getSignedMaxValue(8).isSignedMaxValue());
}

TEST(APIntTest, BitManipulation) {
  APInt A = APInt::getZero(64);
  A.setBit(63);
  EXPECT_TRUE(A.isNegative());
  EXPECT_TRUE(A.isPowerOf2());
  EXPECT_EQ(A.logBase2(), 63u);
  A.clearBit(63);
  EXPECT_TRUE(A.isZero());

  APInt B = APInt::getOneBitSet(128, 100);
  EXPECT_TRUE(B.testBit(100));
  EXPECT_EQ(B.countTrailingZeros(), 100u);
  EXPECT_EQ(B.countLeadingZeros(), 27u);
  EXPECT_EQ(B.popcount(), 1u);
}

TEST(APIntTest, LowHighBitMasks) {
  EXPECT_EQ(APInt::getLowBitsSet(16, 4).getZExtValue(), 0xFu);
  EXPECT_EQ(APInt::getHighBitsSet(16, 4).getZExtValue(), 0xF000u);
  EXPECT_TRUE(APInt::getLowBitsSet(16, 0).isZero());
  EXPECT_TRUE(APInt::getLowBitsSet(16, 16).isAllOnes());
}

TEST(APIntTest, ComparisonCorners) {
  APInt Min = APInt::getSignedMinValue(32);
  APInt Max = APInt::getSignedMaxValue(32);
  EXPECT_TRUE(Min.slt(Max));
  EXPECT_TRUE(Max.ult(Min)); // unsigned: 0x7FFF... < 0x8000...
  EXPECT_TRUE(Min.sle(Min));
  EXPECT_TRUE(APInt(32, 0).sgt(Min));
}

TEST(APIntTest, DivisionSemantics) {
  // C-style truncation toward zero.
  APInt A(32, (uint64_t)-7, true), B(32, 2);
  EXPECT_EQ(A.sdiv(B).getSExtValue(), -3);
  EXPECT_EQ(A.srem(B).getSExtValue(), -1);
  EXPECT_EQ(APInt(32, 7).sdiv(APInt(32, (uint64_t)-2, true)).getSExtValue(),
            -3);
  EXPECT_EQ(APInt(32, 7).srem(APInt(32, (uint64_t)-2, true)).getSExtValue(),
            1);
}

TEST(APIntTest, OverflowDetection) {
  bool Ov;
  APInt::getSignedMaxValue(8).sadd_ov(APInt(8, 1), Ov);
  EXPECT_TRUE(Ov);
  APInt(8, 100).sadd_ov(APInt(8, 27), Ov);
  EXPECT_FALSE(Ov);
  APInt::getMaxValue(8).uadd_ov(APInt(8, 1), Ov);
  EXPECT_TRUE(Ov);
  APInt(8, 0).usub_ov(APInt(8, 1), Ov);
  EXPECT_TRUE(Ov);
  APInt(8, 16).umul_ov(APInt(8, 16), Ov);
  EXPECT_TRUE(Ov);
  APInt(8, 15).umul_ov(APInt(8, 17), Ov);
  EXPECT_FALSE(Ov);
  APInt::getSignedMinValue(8).sdiv_ov(APInt::getAllOnes(8), Ov);
  EXPECT_TRUE(Ov);
}

TEST(APIntTest, SaturatingArithmetic) {
  EXPECT_TRUE(APInt::getMaxValue(8).uadd_sat(APInt(8, 1)).isAllOnes());
  EXPECT_TRUE(APInt(8, 0).usub_sat(APInt(8, 5)).isZero());
  EXPECT_TRUE(
      APInt::getSignedMaxValue(8).sadd_sat(APInt(8, 1)).isSignedMaxValue());
  EXPECT_TRUE(
      APInt::getSignedMinValue(8).ssub_sat(APInt(8, 1)).isSignedMinValue());
}

TEST(APIntTest, ShiftsAndRotates) {
  APInt A(16, 0x00F0);
  EXPECT_EQ(A.shl(4).getZExtValue(), 0x0F00u);
  EXPECT_EQ(A.lshr(4).getZExtValue(), 0x000Fu);
  APInt Neg(16, 0x8000);
  EXPECT_EQ(Neg.ashr(15).getZExtValue(), 0xFFFFu);
  EXPECT_EQ(APInt(8, 0x81).rotl(1).getZExtValue(), 0x03u);
  EXPECT_EQ(APInt(8, 0x81).rotr(1).getZExtValue(), 0xC0u);
}

TEST(APIntTest, Conversions) {
  APInt A(8, 0x80);
  EXPECT_EQ(A.zext(16).getZExtValue(), 0x80u);
  EXPECT_EQ(A.sext(16).getZExtValue(), 0xFF80u);
  EXPECT_EQ(APInt(16, 0x1234).trunc(8).getZExtValue(), 0x34u);
  EXPECT_EQ(A.zextOrTrunc(8).getZExtValue(), 0x80u);
}

TEST(APIntTest, ByteSwapAndBitReverse) {
  EXPECT_EQ(APInt(32, 0x12345678).byteSwap().getZExtValue(), 0x78563412u);
  EXPECT_EQ(APInt(16, 0xABCD).byteSwap().getZExtValue(), 0xCDABu);
  EXPECT_EQ(APInt(8, 0x01).bitReverse().getZExtValue(), 0x80u);
}

TEST(APIntTest, StringRoundTrip) {
  EXPECT_EQ(APInt(32, (uint64_t)-16, true).toString(), "-16");
  EXPECT_EQ(APInt(32, 65536).toString(), "65536");
  EXPECT_EQ(APInt(1, 1).toString(/*Signed=*/false), "1");
  EXPECT_EQ(APInt(1, 1).toString(/*Signed=*/true), "-1");

  APInt V;
  ASSERT_TRUE(APInt::fromString(32, "-16", V));
  EXPECT_EQ(V.getSExtValue(), -16);
  ASSERT_TRUE(APInt::fromString(64, "1280583335", V));
  EXPECT_EQ(V.getZExtValue(), 1280583335u);
  EXPECT_FALSE(APInt::fromString(32, "", V));
  EXPECT_FALSE(APInt::fromString(32, "12a", V));
  EXPECT_FALSE(APInt::fromString(32, "-", V));
}

TEST(APIntTest, WideArithmetic128) {
  APInt A = APInt::fromParts(128, ~0ULL, 0); // 2^64 - 1
  APInt One(128, 1);
  APInt B = A + One; // 2^64
  EXPECT_EQ(B.getLoBits64(), 0u);
  EXPECT_EQ(B.getHiBits64(), 1u);
  EXPECT_EQ((B - One).getLoBits64(), ~0ULL);
  APInt Sq = A * A; // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(Sq.getLoBits64(), 1u);
  EXPECT_EQ(Sq.getHiBits64(), ~0ULL - 1);
  EXPECT_EQ(Sq.udiv(A), A);
  EXPECT_TRUE(Sq.urem(A).isZero());
}

// Property sweep: APInt must agree with native 64-bit arithmetic at every
// width up to 64.
class APIntPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(APIntPropertyTest, MatchesNativeArithmetic) {
  unsigned W = GetParam();
  uint64_t Mask = W == 64 ? ~0ULL : ((1ULL << W) - 1);
  RandomGenerator RNG(1234 + W);
  for (int Trial = 0; Trial != 500; ++Trial) {
    uint64_t XRaw = RNG.next64() & Mask, YRaw = RNG.next64() & Mask;
    APInt X(W, XRaw), Y(W, YRaw);
    EXPECT_EQ((X + Y).getZExtValue(), (XRaw + YRaw) & Mask);
    EXPECT_EQ((X - Y).getZExtValue(), (XRaw - YRaw) & Mask);
    EXPECT_EQ((X * Y).getZExtValue(), (XRaw * YRaw) & Mask);
    EXPECT_EQ((X & Y).getZExtValue(), XRaw & YRaw);
    EXPECT_EQ((X | Y).getZExtValue(), XRaw | YRaw);
    EXPECT_EQ((X ^ Y).getZExtValue(), XRaw ^ YRaw);
    EXPECT_EQ(X.ult(Y), XRaw < YRaw);
    if (YRaw != 0) {
      EXPECT_EQ(X.udiv(Y).getZExtValue(), XRaw / YRaw);
      EXPECT_EQ(X.urem(Y).getZExtValue(), XRaw % YRaw);
    }
    unsigned Amt = (unsigned)RNG.below(W);
    EXPECT_EQ(X.shl(Amt).getZExtValue(), (XRaw << Amt) & Mask);
    EXPECT_EQ(X.lshr(Amt).getZExtValue(), XRaw >> Amt);
    // Signed comparisons against sign-extended natives.
    auto SExt = [&](uint64_t V) {
      unsigned Shift = 64 - W;
      return (int64_t)(V << Shift) >> Shift;
    };
    EXPECT_EQ(X.slt(Y), SExt(XRaw) < SExt(YRaw));
    EXPECT_EQ(X.popcount(), (unsigned)__builtin_popcountll(XRaw));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, APIntPropertyTest,
                         ::testing::Values(1, 3, 7, 8, 13, 16, 26, 31, 32, 33,
                                           48, 63, 64));

// Property: 128-bit division identity a = q*b + r, r < b.
TEST(APIntTest, WideDivisionIdentity) {
  RandomGenerator RNG(99);
  for (int Trial = 0; Trial != 300; ++Trial) {
    APInt A = APInt::fromParts(128, RNG.next64(), RNG.next64());
    APInt B = APInt::fromParts(128, RNG.next64(),
                               RNG.flip() ? RNG.next64() : 0);
    if (B.isZero())
      continue;
    APInt Q = A.udiv(B), R = A.urem(B);
    EXPECT_EQ(Q * B + R, A);
    EXPECT_TRUE(R.ult(B));
  }
}

// Property: overflow flags match the widened-arithmetic definition.
TEST(APIntTest, OverflowMatchesWidening) {
  RandomGenerator RNG(7);
  for (int Trial = 0; Trial != 1000; ++Trial) {
    unsigned W = 2 + (unsigned)RNG.below(30);
    APInt X = RNG.nextAPInt(W), Y = RNG.nextAPInt(W);
    bool Ov;
    X.sadd_ov(Y, Ov);
    APInt Wide = X.sext(2 * W) + Y.sext(2 * W);
    EXPECT_EQ(Ov, Wide != (X + Y).sext(2 * W)) << "width " << W;
    X.smul_ov(Y, Ov);
    APInt WideM = X.sext(2 * W) * Y.sext(2 * W);
    EXPECT_EQ(Ov, WideM != (X * Y).sext(2 * W)) << "width " << W;
    X.umul_ov(Y, Ov);
    APInt WideU = X.zext(2 * W) * Y.zext(2 * W);
    EXPECT_EQ(Ov, WideU != (X * Y).zext(2 * W)) << "width " << W;
  }
}

TEST(RandomGeneratorTest, DeterministicStreams) {
  RandomGenerator A(42), B(42), C(43);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next64(), B.next64());
  bool Differs = false;
  RandomGenerator A2(42);
  for (int I = 0; I != 100; ++I)
    Differs |= A2.next64() != C.next64();
  EXPECT_TRUE(Differs);
}

TEST(RandomGeneratorTest, BelowRespectsBound) {
  RandomGenerator RNG(1);
  for (int I = 0; I != 1000; ++I) {
    uint64_t B = 1 + RNG.below(100);
    EXPECT_LT(RNG.below(B), B);
  }
}

TEST(RandomGeneratorTest, ReseedReproduces) {
  RandomGenerator RNG(5);
  std::vector<uint64_t> First;
  for (int I = 0; I != 16; ++I)
    First.push_back(RNG.next64());
  RNG.reseed(5);
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(RNG.next64(), First[I]);
}

TEST(RandomGeneratorTest, APIntWidthAlwaysCorrect) {
  RandomGenerator RNG(9);
  for (int I = 0; I != 200; ++I) {
    unsigned W = 1 + (unsigned)RNG.below(128);
    EXPECT_EQ(RNG.nextAPInt(W).getBitWidth(), W);
  }
}
