//===- tests/telemetry_test.cpp - Telemetry subsystem unit tests ------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Unit tests for the campaign telemetry subsystem: histogram bucket
/// boundaries and percentile math, the registry's commutative merge (any
/// permutation of worker registries serializes byte-identically), the
/// volatility split of writeJSON, and the ScopedTimer sinks.
///
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <cmath>
#include <gtest/gtest.h>
#include <sstream>

using namespace alive;

namespace {

std::string toJSON(const StatRegistry &R, Volatility V) {
  std::ostringstream OS;
  R.writeJSON(OS, V);
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Histogram bucket boundaries.
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, BucketBoundariesAreExact) {
  // Bucket 0 holds everything up to (and including) 1 microsecond;
  // bucket i covers (2^(i-1) us, 2^i us].
  EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(5e-7), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1e-6), 0u);
  EXPECT_EQ(Histogram::bucketIndex(2e-6), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2.0000001e-6), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4e-6), 2u);
  // A sample exactly on a bucket's (inclusive) bound lands in that bucket.
  EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketUpperBound(20)), 20u);
  // Anything past every finite bound goes to the unbounded last bucket.
  EXPECT_EQ(Histogram::bucketIndex(1e12), Histogram::NumBuckets - 1);
  // Bounds double bucket to bucket, and the last one is unbounded.
  EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(3),
                   2 * Histogram::bucketUpperBound(2));
  EXPECT_TRUE(std::isinf(Histogram::bucketUpperBound(Histogram::NumBuckets - 1)));
}

TEST(TelemetryTest, RecordTracksCountSumMinMax) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0.0);
  EXPECT_EQ(H.percentile(0.5), 0.0);
  H.record(0.001);
  H.record(0.004);
  H.record(0.002);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_DOUBLE_EQ(H.sum(), 0.007);
  EXPECT_DOUBLE_EQ(H.min(), 0.001);
  EXPECT_DOUBLE_EQ(H.max(), 0.004);
}

TEST(TelemetryTest, PercentileIsBucketUpperBoundClampedToRange) {
  Histogram H;
  // 90 fast samples in one bucket, 10 slow ones in another.
  for (int I = 0; I != 90; ++I)
    H.record(3e-6); // bucket (2us, 4us]
  for (int I = 0; I != 10; ++I)
    H.record(1.0); // bucket (0.5s, 1.05s]
  // p50 and p90 rank inside the fast bucket: its 4us upper bound.
  EXPECT_DOUBLE_EQ(H.percentile(0.5), 4e-6);
  EXPECT_DOUBLE_EQ(H.percentile(0.9), 4e-6);
  // p99 ranks into the slow bucket, clamped to the observed max.
  EXPECT_DOUBLE_EQ(H.percentile(0.99), 1.0);
  // p0 ranks as the first sample (the fast bucket's bound); p100 clamps
  // to the observed max.
  EXPECT_DOUBLE_EQ(H.percentile(0.0), 4e-6);
  EXPECT_DOUBLE_EQ(H.percentile(1.0), 1.0);
}

TEST(TelemetryTest, PercentilesAreMonotoneOnAdversarialDistributions) {
  // Distributions engineered to trip an unclamped estimator: a huge mass
  // in a tiny bucket next to a thin tail in a wide one (the wide bucket's
  // raw upper bound can exceed the max sample by almost 2x), an isolated
  // spike, samples in the unbounded last bucket, and a single sample.
  Histogram Hists[4];
  for (int I = 0; I != 999; ++I)
    Hists[0].record(3e-6);
  Hists[0].record(17.4); // bucket (16.8s, 33.6s] — bound way above max
  Hists[1].record(1e-6);
  for (int I = 0; I != 50; ++I)
    Hists[1].record(0.9);
  Hists[2].record(2.0);
  Hists[2].record(1e12); // unbounded last bucket
  Hists[3].record(0.123);
  for (const Histogram &H : Hists) {
    // Monotone over a dense grid of P, and never above the observed max.
    double Prev = 0;
    for (double P = 0.0; P <= 1.0; P += 0.01) {
      double V = H.percentile(P);
      EXPECT_GE(V, Prev) << "P=" << P;
      EXPECT_LE(V, H.max()) << "P=" << P;
      EXPECT_GE(V, H.min()) << "P=" << P;
      Prev = V;
    }
    // The specific chain every report quotes.
    EXPECT_LE(H.percentile(0.5), H.percentile(0.9));
    EXPECT_LE(H.percentile(0.9), H.percentile(0.99));
    EXPECT_LE(H.percentile(0.99), H.max());
  }
  // The regression that motivated the clamp: 999 fast + 1 slow sample must
  // report p90 <= p99, not a p90 above the slowest sample ever recorded.
  EXPECT_DOUBLE_EQ(Hists[0].percentile(0.9), 4e-6);
  // p100 ranks the slow sample into the (16.8s, 33.6s] bucket; the raw
  // 33.6s bound clamps to the 17.4s max actually observed.
  EXPECT_DOUBLE_EQ(Hists[0].percentile(1.0), 17.4);
}

TEST(TelemetryTest, HistogramMergeSumsBuckets) {
  Histogram A, B;
  A.record(1e-6);
  A.record(0.5);
  B.record(1e-3);
  B.record(2.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_NEAR(A.sum(), 2.501001, 1e-12);
  EXPECT_DOUBLE_EQ(A.min(), 1e-6);
  EXPECT_DOUBLE_EQ(A.max(), 2.0);
  // Merging an empty histogram changes nothing.
  Histogram Empty;
  A.merge(Empty);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_DOUBLE_EQ(A.min(), 1e-6);
}

//===----------------------------------------------------------------------===//
// Registry basics and the volatility split.
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, CountersGaugesAndLookup) {
  StatRegistry R;
  EXPECT_EQ(R.counterValue("absent"), 0u);
  std::atomic<uint64_t> &C = R.counter("c");
  C += 3;
  ++R.counter("c"); // same slot
  EXPECT_EQ(R.counterValue("c"), 4u);
  R.gauge("g") = 2.5;
  R.histogram("h").record(0.1);
  EXPECT_EQ(R.histogram("h").count(), 1u);
}

TEST(TelemetryTest, WriteJSONSeparatesVolatilityClasses) {
  StatRegistry R;
  R.counter("det.counter") = 7;
  R.counter("vol.counter", Volatility::Volatile) = 9;
  R.gauge("det.gauge") = 1.5;
  R.histogram("lat").record(0.25); // histograms are always volatile

  std::string Det = toJSON(R, Volatility::Deterministic);
  std::string Vol = toJSON(R, Volatility::Volatile);
  EXPECT_NE(Det.find("det.counter"), std::string::npos);
  EXPECT_NE(Det.find("det.gauge"), std::string::npos);
  EXPECT_EQ(Det.find("vol.counter"), std::string::npos);
  EXPECT_EQ(Det.find("lat"), std::string::npos);
  EXPECT_NE(Vol.find("vol.counter"), std::string::npos);
  EXPECT_NE(Vol.find("lat"), std::string::npos);
  EXPECT_EQ(Vol.find("det.counter"), std::string::npos);
}

TEST(TelemetryTest, MergeSumsCountersAndMaxesGauges) {
  StatRegistry A, B;
  A.counter("shared") = 2;
  B.counter("shared") = 5;
  B.counter("only-b") = 1;
  A.gauge("peak") = 3.0;
  B.gauge("peak") = 7.0;
  A.merge(B);
  EXPECT_EQ(A.counterValue("shared"), 7u);
  EXPECT_EQ(A.counterValue("only-b"), 1u);
  EXPECT_DOUBLE_EQ(A.gauge("peak"), 7.0);
}

TEST(TelemetryTest, MergeOrderDoesNotChangeSerializedOutput) {
  // The determinism contract: merging any permutation of worker
  // registries yields byte-identical JSON.
  auto MakeWorker = [](unsigned Salt) {
    StatRegistry R;
    R.counter("mutation.add-inst.applied") = 10 + Salt;
    R.counter("pass.dce.invocations") = 100 * (Salt + 1);
    R.gauge("depth") = 1.0 + Salt;
    for (unsigned I = 0; I != 5 + Salt; ++I)
      R.histogram("stage.mutate.seconds").record(1e-4 * (Salt + 1));
    return R;
  };
  StatRegistry W0 = MakeWorker(0), W1 = MakeWorker(1), W2 = MakeWorker(2);

  const unsigned Orders[][3] = {{0, 1, 2}, {2, 1, 0}, {1, 2, 0},
                                {0, 2, 1}, {2, 0, 1}, {1, 0, 2}};
  const StatRegistry *Workers[3] = {&W0, &W1, &W2};
  std::string Reference;
  for (const auto &Order : Orders) {
    StatRegistry Merged;
    for (unsigned I : Order)
      Merged.merge(*Workers[I]);
    std::string Out = toJSON(Merged, Volatility::Deterministic) +
                      toJSON(Merged, Volatility::Volatile);
    if (Reference.empty())
      Reference = Out;
    EXPECT_EQ(Out, Reference);
  }
  EXPECT_NE(Reference.find("\"mutation.add-inst.applied\": 33"),
            std::string::npos)
      << Reference;
}

TEST(TelemetryTest, VolatilityIsFixedAtCreation) {
  StatRegistry R;
  R.counter("c", Volatility::Volatile) = 1;
  R.counter("c", Volatility::Deterministic) += 1; // ignored: stays volatile
  EXPECT_EQ(toJSON(R, Volatility::Deterministic).find("\"c\""),
            std::string::npos);
  EXPECT_NE(toJSON(R, Volatility::Volatile).find("\"c\": 2"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// ScopedTimer.
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, ScopedTimerFeedsAllSinks) {
  Histogram H;
  double Accum = 0;
  std::atomic<uint64_t> Nanos{0};
  {
    ScopedTimer T(&H, &Accum, &Nanos);
    // Spin a little so the elapsed time is non-zero.
    volatile unsigned X = 0;
    for (unsigned I = 0; I != 100000; ++I)
      X += I;
    (void)X;
  }
  EXPECT_EQ(H.count(), 1u);
  EXPECT_GT(Accum, 0.0);
  EXPECT_GT(Nanos.load(), 0u);
  EXPECT_NEAR(Accum, Nanos.load() * 1e-9, 1e-3);
}

TEST(TelemetryTest, ScopedTimerStopIsIdempotent) {
  Histogram H;
  double Accum = 0;
  ScopedTimer T(&H, &Accum);
  double First = T.stop();
  double Second = T.stop(); // no double-record, same value
  EXPECT_EQ(First, Second);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_DOUBLE_EQ(Accum, First);
}

TEST(TelemetryTest, ScopedTimerCancelRecordsNothing) {
  Histogram H;
  double Accum = 0;
  {
    ScopedTimer T(&H, &Accum);
    T.cancel();
  }
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(Accum, 0.0);
}

//===----------------------------------------------------------------------===//
// JSON helpers.
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, JSONStringEscaping) {
  std::ostringstream OS;
  writeJSONString(OS, "a\"b\\c\n\t\x01");
  EXPECT_EQ(OS.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(TelemetryTest, HistogramJSONHasPercentilesAndBuckets) {
  Histogram H;
  for (int I = 0; I != 100; ++I)
    H.record(1e-3);
  std::ostringstream OS;
  writeHistogramJSON(OS, H);
  const std::string S = OS.str();
  EXPECT_NE(S.find("\"count\": 100"), std::string::npos) << S;
  EXPECT_NE(S.find("\"p50_s\""), std::string::npos);
  EXPECT_NE(S.find("\"p90_s\""), std::string::npos);
  EXPECT_NE(S.find("\"p99_s\""), std::string::npos);
  EXPECT_NE(S.find("\"le_s\""), std::string::npos);
}
