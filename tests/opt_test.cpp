//===- tests/opt_test.cpp - Optimizer pass tests ----------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "opt/BugInjection.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tv/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

/// Parses, runs the pipeline on every function, verifies, and TV-checks the
/// result against the original. Returns the optimized module text.
std::string optimizeChecked(const std::string &IR, const std::string &Passes,
                            TVVerdict Expected = TVVerdict::Correct) {
  std::string Err;
  auto M = parseModule(IR, Err);
  EXPECT_NE(M, nullptr) << Err;
  if (!M)
    return "";
  auto Original = cloneModule(*M);

  PassManager PM;
  EXPECT_TRUE(buildPipeline(Passes, PM, Err)) << Err;
  PM.runToFixpoint(*M);

  std::vector<std::string> VErrs;
  EXPECT_TRUE(verifyModule(*M, VErrs))
      << (VErrs.empty() ? "" : VErrs.front()) << "\n"
      << printModule(*M);

  for (Function *F : Original->functions()) {
    if (F->isDeclaration())
      continue;
    Function *Opt = M->getFunction(F->getName());
    EXPECT_NE(Opt, nullptr);
    if (!Opt)
      continue;
    TVResult R = checkRefinement(*F, *Opt);
    EXPECT_EQ(R.Verdict, Expected)
        << F->getName() << ": " << R.Detail << "\noptimized:\n"
        << printFunction(*Opt);
  }
  return printModule(*M);
}

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

} // namespace

// No ambient bug context is installed: every seeded defect is disabled and
// the optimizer under test is the correct one.
class OptTest : public ::testing::Test {};

TEST_F(OptTest, InstSimplifyIdentities) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = or i32 %b, 0
  %d = xor i32 %c, 0
  ret i32 %d
}
)",
                                    "instsimplify,dce");
  EXPECT_TRUE(contains(Out, "ret i32 %x")) << Out;
  EXPECT_FALSE(contains(Out, "add")) << Out;
}

TEST_F(OptTest, InstSimplifySelfOperations) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %a = sub i32 %x, %x
  %b = udiv i32 %x, %x
  %c = add i32 %a, %b
  ret i32 %c
}
)",
                                    "instsimplify,constfold,dce");
  EXPECT_TRUE(contains(Out, "ret i32 1")) << Out;
}

TEST_F(OptTest, ConstantFolding) {
  std::string Out = optimizeChecked(R"(
define i32 @f() {
  %a = add i32 3, 4
  %b = mul i32 %a, 10
  %c = sub i32 %b, 20
  ret i32 %c
}
)",
                                    "constfold,dce");
  EXPECT_TRUE(contains(Out, "ret i32 50")) << Out;
}

TEST_F(OptTest, ConstantFoldingRespectsPoisonFlags) {
  // 127 + 1 with nsw folds to poison, not to -128.
  std::string Out = optimizeChecked(R"(
define i8 @f() {
  %a = add nsw i8 127, 1
  ret i8 %a
}
)",
                                    "constfold,dce");
  EXPECT_TRUE(contains(Out, "ret i8 poison")) << Out;
}

TEST_F(OptTest, ConstantFoldingNeverFoldsUB) {
  // udiv by zero constant must NOT fold (it is UB, not poison).
  std::string Out = optimizeChecked(R"(
define i8 @f() {
  %a = udiv i8 1, 0
  ret i8 %a
}
)",
                                    "constfold");
  EXPECT_TRUE(contains(Out, "udiv")) << Out;
}

TEST_F(OptTest, InstCombineMulToShl) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %a = mul nsw i32 %x, 8
  ret i32 %a
}
)",
                                    "instcombine");
  EXPECT_TRUE(contains(Out, "shl nsw i32 %x, 3")) << Out;
}

TEST_F(OptTest, InstCombineUDivURem) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %a = udiv i32 %x, 16
  %b = urem i32 %x, 16
  %c = add i32 %a, %b
  ret i32 %c
}
)",
                                    "instcombine");
  EXPECT_TRUE(contains(Out, "lshr i32 %x, 4")) << Out;
  EXPECT_TRUE(contains(Out, "and i32 %x, 15")) << Out;
}

TEST_F(OptTest, InstCombineDoubleNegation) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %a = xor i32 %x, -1
  %b = xor i32 %a, -1
  ret i32 %b
}
)",
                                    "instcombine,dce");
  EXPECT_TRUE(contains(Out, "ret i32 %x")) << Out;
}

TEST_F(OptTest, InstCombineClampNegatedSelect) {
  // The Figure 1 shape: the xor-negated compare must swap the select arms.
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %neg = xor i1 %t2, true
  %r = select i1 %neg, i32 %x, i32 %t1
  ret i32 %r
}
)",
                                    "instcombine,dce");
  EXPECT_FALSE(contains(Out, "xor")) << Out;
}

TEST_F(OptTest, InstCombineZextMulNuwInference) {
  // i8 zext * i8 zext into i16: widths sum to 16 <= 16 -> nuw is sound.
  std::string Out = optimizeChecked(R"(
define i16 @f(i8 %a, i8 %b) {
  %za = zext i8 %a to i16
  %zb = zext i8 %b to i16
  %m = mul i16 %za, %zb
  ret i16 %m
}
)",
                                    "instcombine");
  EXPECT_TRUE(contains(Out, "mul nuw")) << Out;

  // i8 zext * i8 zext into i15 would overflow: no nuw.
  Out = optimizeChecked(R"(
define i15 @f(i8 %a, i8 %b) {
  %za = zext i8 %a to i15
  %zb = zext i8 %b to i15
  %m = mul i15 %za, %zb
  ret i15 %m
}
)",
                        "instcombine");
  EXPECT_FALSE(contains(Out, "mul nuw")) << Out;
}

TEST_F(OptTest, GVNUnifiesDuplicates) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = add i32 %x, %y
  %c = sub i32 %a, %b
  ret i32 %c
}
)",
                                    "gvn,instsimplify,dce");
  EXPECT_TRUE(contains(Out, "ret i32 0")) << Out;
}

TEST_F(OptTest, GVNCommutativeUnification) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x, i32 %y) {
  %a = add i32 %x, %y
  %b = add i32 %y, %x
  %c = sub i32 %a, %b
  ret i32 %c
}
)",
                                    "gvn,instsimplify,dce");
  EXPECT_TRUE(contains(Out, "ret i32 0")) << Out;
}

TEST_F(OptTest, GVNIntersectsFlags) {
  // Leader has nsw, duplicate does not: the unified value must NOT keep
  // nsw (Table I 53218, the fix).
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x, i32 %y) {
  %a = add nsw i32 %x, %y
  %b = add i32 %x, %y
  %s = add i32 %a, %b
  ret i32 %s
}
)",
                                    "gvn");
  EXPECT_FALSE(contains(Out, "nsw")) << Out;
}

TEST_F(OptTest, DCERemovesDeadCode) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %dead1 = mul i32 %x, 42
  %dead2 = add i32 %dead1, 7
  ret i32 %x
}
)",
                                    "dce");
  EXPECT_FALSE(contains(Out, "mul")) << Out;
  EXPECT_FALSE(contains(Out, "add")) << Out;
}

TEST_F(OptTest, DCEKeepsSideEffects) {
  std::string Out = optimizeChecked(R"(
declare void @ext(ptr)

define void @f(ptr %p) {
  store i32 1, ptr %p
  call void @ext(ptr %p)
  ret void
}
)",
                                    "dce");
  EXPECT_TRUE(contains(Out, "store")) << Out;
  EXPECT_TRUE(contains(Out, "call")) << Out;
}

TEST_F(OptTest, SimplifyCFGFoldsConstantBranch) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
entry:
  br i1 true, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
)",
                                    "simplifycfg");
  EXPECT_FALSE(contains(Out, "br ")) << Out;
  EXPECT_TRUE(contains(Out, "ret i32 1")) << Out;
}

TEST_F(OptTest, SimplifyCFGMergesBlocksAndPhis) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %t, label %f
t:
  %a = add i32 %x, 1
  br label %join
f:
  %b = add i32 %x, 2
  br label %join
join:
  %p = phi i32 [ %a, %t ], [ %b, %f ]
  ret i32 %p
}
)",
                                    "simplifycfg");
  // Structure preserved here (no constant branch), but a constant branch
  // version collapses fully:
  Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
entry:
  br i1 false, label %t, label %f
t:
  %a = add i32 %x, 1
  br label %join
f:
  %b = add i32 %x, 2
  br label %join
join:
  %p = phi i32 [ %a, %t ], [ %b, %f ]
  ret i32 %p
}
)",
                        "simplifycfg,dce");
  EXPECT_FALSE(contains(Out, "phi")) << Out;
  EXPECT_FALSE(contains(Out, "%a")) << Out;
}

TEST_F(OptTest, SROAPromotesAlloca) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %p = alloca i32, align 4
  store i32 %x, ptr %p, align 4
  %v = load i32, ptr %p, align 4
  ret i32 %v
}
)",
                                    "sroa,dce");
  EXPECT_FALSE(contains(Out, "alloca")) << Out;
  EXPECT_TRUE(contains(Out, "ret i32 %x")) << Out;
}

TEST_F(OptTest, ReassociateFoldsConstantChains) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %a = add i32 %x, 10
  %b = add i32 %a, 20
  ret i32 %b
}
)",
                                    "reassociate,dce");
  EXPECT_TRUE(contains(Out, "add i32 %x, 30")) << Out;
}

TEST_F(OptTest, LoweringRotateMatch) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %hi = shl i32 %x, 5
  %lo = lshr i32 %x, 27
  %r = or i32 %hi, %lo
  ret i32 %r
}
)",
                                    "lowering,dce");
  EXPECT_TRUE(contains(Out, "llvm.fshl.i32")) << Out;
}

TEST_F(OptTest, LoweringMaskedRotateRequiresFullMask) {
  // The mask removes produced bits: NOT a rotate; must stay untouched.
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %hi = shl i32 %x, 5
  %himask = and i32 %hi, 65504
  %lo = lshr i32 %x, 27
  %r = or i32 %himask, %lo
  ret i32 %r
}
)",
                                    "lowering");
  EXPECT_FALSE(contains(Out, "fshl")) << Out;
}

TEST_F(OptTest, LoweringBSwap16) {
  std::string Out = optimizeChecked(R"(
define i16 @f(i16 %x) {
  %hi = shl i16 %x, 8
  %lo = lshr i16 %x, 8
  %r = or i16 %hi, %lo
  ret i16 %r
}
)",
                                    "lowering,dce");
  EXPECT_TRUE(contains(Out, "llvm.bswap.i16")) << Out;
}

TEST_F(OptTest, LoweringURemRecompose) {
  // i8: the udiv/mul/sub vs urem identity is SAT-provable quickly at narrow
  // widths (at i32 it exceeds the solver budget, like Alive2's worst case).
  std::string Out = optimizeChecked(R"(
define i8 @f(i8 %x, i8 %y) {
  %d = udiv i8 %x, %y
  %m = mul i8 %d, %y
  %r = sub i8 %x, %m
  ret i8 %r
}
)",
                                    "lowering,dce");
  EXPECT_TRUE(contains(Out, "urem i8 %x, %y")) << Out;
}

TEST_F(OptTest, LoweringUSubSatExpansion) {
  std::string Out = optimizeChecked(R"(
define i8 @f(i8 %x, i8 %y) {
  %r = call i8 @llvm.usub.sat.i8(i8 %x, i8 %y)
  ret i8 %r
}
)",
                                    "lowering,dce");
  EXPECT_FALSE(contains(Out, "call i8 @llvm.usub.sat")) << Out;
  EXPECT_TRUE(contains(Out, "select")) << Out;
}

TEST_F(OptTest, LoweringAbsExpansion) {
  std::string Out = optimizeChecked(R"(
define i8 @f(i8 %x) {
  %r = call i8 @llvm.abs.i8(i8 %x, i1 false)
  ret i8 %r
}
)",
                                    "lowering,dce");
  EXPECT_FALSE(contains(Out, "call i8 @llvm.abs")) << Out;
}

TEST_F(OptTest, LoweringZextLshrOfBool) {
  // Listing 18 shape: lshr (zext i1), 1 must fold to 0.
  std::string Out = optimizeChecked(R"(
define i64 @f(i1 %b) {
  %z = zext i1 %b to i64
  %r = lshr i64 %z, 1
  ret i64 %r
}
)",
                                    "lowering,dce");
  EXPECT_TRUE(contains(Out, "ret i64 0")) << Out;
}

TEST_F(OptTest, LoweringComparePromotion) {
  // Listing 19 shape: icmp ugt i8 -31, %1 — after canonicalization the
  // promotion must ZERO-extend the unsigned constant.
  std::string Out = optimizeChecked(R"(
define i32 @f() {
  %1 = sub i8 -66, 0
  %2 = icmp ugt i8 -31, %1
  %3 = select i1 %2, i32 1, i32 0
  ret i32 %3
}
)",
                                    "instcombine,lowering,constfold,"
                                    "instsimplify,dce");
  EXPECT_TRUE(contains(Out, "ret i32 1")) << Out;
}

TEST_F(OptTest, VectorCombineExtractOfInsert) {
  std::string Out = optimizeChecked(R"(
define i32 @f(<4 x i32> %v, i32 %e) {
  %w = insertelement <4 x i32> %v, i32 %e, i32 2
  %r = extractelement <4 x i32> %w, i32 2
  ret i32 %r
}
)",
                                    "vector-combine,dce");
  EXPECT_TRUE(contains(Out, "ret i32 %e")) << Out;
}

TEST_F(OptTest, VectorCombineScalarizesExtractOfBinop) {
  std::string Out = optimizeChecked(R"(
define i8 @f(<4 x i8> %a, <4 x i8> %b) {
  %s = add <4 x i8> %a, %b
  %r = extractelement <4 x i8> %s, i32 1
  ret i8 %r
}
)",
                                    "vector-combine,dce");
  EXPECT_TRUE(contains(Out, "add i8")) << Out;
}

TEST_F(OptTest, InferAlignmentRaisesFromAlloca) {
  std::string Out = optimizeChecked(R"(
define i32 @f(i32 %x) {
  %p = alloca i32, align 8
  store i32 %x, ptr %p, align 2
  %v = load i32, ptr %p, align 2
  ret i32 %v
}
)",
                                    "infer-alignment");
  EXPECT_TRUE(contains(Out, "align 8")) << Out;
}

TEST_F(OptTest, MoveAutoInitSinksStore) {
  std::string Out = optimizeChecked(R"(
declare i32 @observe()

define i32 @f() {
  %p = alloca i32, align 4
  store i32 0, ptr %p, align 4
  %x = call i32 @observe()
  %y = add i32 %x, 1
  %v = load i32, ptr %p, align 4
  %r = add i32 %y, %v
  ret i32 %r
}
)",
                                    "move-auto-init");
  // The store must not move past @observe (it may read memory), so the
  // output is unchanged semantically — soundness is what matters here.
  EXPECT_TRUE(contains(Out, "store")) << Out;
}

TEST_F(OptTest, FullO2PipelineIsSound) {
  // A grab-bag of shapes through the whole -O2 pipeline; every function
  // must refine.
  optimizeChecked(R"(
declare void @clobber(ptr)

define i32 @t1_ult_slt_0(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, -16
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = add i32 %x, 16
  %t3 = icmp ult i32 %t2, 144
  %r = select i1 %t3, i32 %x, i32 %t1
  ret i32 %r
}

define i32 @test9(ptr %p, ptr %q) {
  %a = load i32, ptr %q, align 4
  call void @clobber(ptr %p)
  %b = load i32, ptr %q, align 4
  %c = sub i32 %a, %b
  ret i32 %c
}

define i8 @mixed(i8 %x, i8 %y) {
  %m = call i8 @llvm.smax.i8(i8 %x, i8 %y)
  %s = call i8 @llvm.usub.sat.i8(i8 %m, i8 3)
  %d = udiv i8 %s, 4
  %e = mul i8 %d, 6
  ret i8 %e
}

define i32 @cfg(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  %v1 = add nsw i32 %x, 1
  br label %join
b:
  %v2 = add nsw i32 %x, 1
  br label %join
join:
  %p = phi i32 [ %v1, %a ], [ %v2, %b ]
  ret i32 %p
}
)",
                  "O2");
}

TEST_F(OptTest, PipelineParsing) {
  PassManager PM;
  std::string Err;
  EXPECT_TRUE(buildPipeline("instcombine,dce", PM, Err));
  EXPECT_EQ(PM.size(), 2u);
  PassManager PM2;
  EXPECT_TRUE(buildPipeline("-O2", PM2, Err));
  EXPECT_GT(PM2.size(), 5u);
  PassManager PM3;
  EXPECT_FALSE(buildPipeline("nonexistent-pass", PM3, Err));
  EXPECT_TRUE(contains(Err, "nonexistent-pass"));
}

TEST_F(OptTest, AllRegisteredPassesConstruct) {
  for (const std::string &Name : allPassNames()) {
    auto P = createPassByName(Name);
    ASSERT_NE(P, nullptr) << Name;
    EXPECT_EQ(P->getName(), Name);
  }
}
