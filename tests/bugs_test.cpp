//===- tests/bugs_test.cpp - Seeded Table I defect tests --------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// One test per seeded Table I defect: a crafted trigger function that,
/// with the bug ENABLED, either produces a translation-validation failure
/// (miscompilation rows) or a simulated optimizer crash (crash rows) — and
/// with the bug DISABLED optimizes soundly. This validates the campaign
/// machinery end to end: every row of the paper's Table I is reachable.
///
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "opt/BugInjection.h"
#include "opt/Pass.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "tv/RefinementChecker.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

struct RunOutcome {
  bool Crashed = false;
  BugId CrashBug = BugId::PR53252;
  TVVerdict Verdict = TVVerdict::Unsupported;
  std::string Detail;
};

/// Optimizes @f of \p IR with \p Passes, TV-checking the result.
RunOutcome runPipeline(const std::string &IR, const std::string &Passes) {
  RunOutcome Out;
  std::string Err;
  auto M = parseModule(IR, Err);
  EXPECT_NE(M, nullptr) << Err;
  if (!M)
    return Out;
  auto Original = cloneModule(*M);

  PassManager PM;
  EXPECT_TRUE(buildPipeline(Passes, PM, Err)) << Err;
  try {
    PM.runToFixpoint(*M);
  } catch (const OptimizerCrash &C) {
    Out.Crashed = true;
    Out.CrashBug = C.Id;
    Out.Detail = C.What;
    return Out;
  }

  std::vector<std::string> VErrs;
  EXPECT_TRUE(verifyModule(*M, VErrs))
      << (VErrs.empty() ? "" : VErrs.front()) << printModule(*M);

  Function *Src = Original->getFunction("f");
  Function *Tgt = M->getFunction("f");
  EXPECT_NE(Src, nullptr);
  EXPECT_NE(Tgt, nullptr);
  if (!Src || !Tgt)
    return Out;
  TVResult R = checkRefinement(*Src, *Tgt);
  Out.Verdict = R.Verdict;
  Out.Detail = R.Detail + "\noptimized:\n" + printFunction(*Tgt);
  return Out;
}

/// Expects: bug ON -> miscompilation caught by TV; bug OFF -> sound.
void expectMiscompile(BugId Id, const std::string &IR,
                      const std::string &Passes) {
  RunOutcome Clean = runPipeline(IR, Passes);
  EXPECT_FALSE(Clean.Crashed) << "crash with bug disabled";
  EXPECT_EQ(Clean.Verdict, TVVerdict::Correct)
      << "not sound with bug disabled: " << Clean.Detail;

  ScopedBug Guard(Id);
  RunOutcome Buggy = runPipeline(IR, Passes);
  EXPECT_FALSE(Buggy.Crashed) << "unexpected crash";
  EXPECT_EQ(Buggy.Verdict, TVVerdict::Incorrect)
      << "miscompilation not caught: " << Buggy.Detail;
}

/// Expects: bug ON -> simulated optimizer crash; bug OFF -> sound.
void expectCrash(BugId Id, const std::string &IR, const std::string &Passes) {
  RunOutcome Clean = runPipeline(IR, Passes);
  EXPECT_FALSE(Clean.Crashed) << "crash with bug disabled";
  EXPECT_NE(Clean.Verdict, TVVerdict::Incorrect)
      << "not sound with bug disabled: " << Clean.Detail;

  ScopedBug Guard(Id);
  RunOutcome Buggy = runPipeline(IR, Passes);
  EXPECT_TRUE(Buggy.Crashed) << "crash not triggered";
  if (Buggy.Crashed)
    EXPECT_EQ((unsigned)Buggy.CrashBug, (unsigned)Id);
}

} // namespace

//===----------------------------------------------------------------------===//
// Miscompilation rows.
//===----------------------------------------------------------------------===//

TEST(BugTest, PR53252_ClampPredicate) {
  // Figure 1 of the paper: the negated range compare must swap the arms.
  expectMiscompile(BugId::PR53252, R"(
define i32 @f(i32 %x, i32 %low, i32 %high) {
  %t0 = icmp slt i32 %x, 0
  %t1 = select i1 %t0, i32 %low, i32 %high
  %t2 = icmp ult i32 %x, 65536
  %neg = xor i1 %t2, true
  %r = select i1 %neg, i32 %x, i32 %t1
  ret i32 %r
}
)",
                   "instcombine");
}

TEST(BugTest, PR50693_OppositeShiftsOfMinusOne) {
  expectMiscompile(BugId::PR50693, R"(
define i8 @f(i8 %x) {
  %a = shl i8 -1, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)",
                   "instcombine");
}

TEST(BugTest, PR53218_GVNFlagMerge) {
  // The no-flags copy is the one kept alive; if GVN keeps the leader's nsw,
  // INT_MAX+1 becomes poison where the source was defined.
  expectMiscompile(BugId::PR53218, R"(
define i32 @f(i32 %x, i32 %y) {
  %a = add nsw i32 %x, %y
  %b = add i32 %x, %y
  ret i32 %b
}
)",
                   "gvn");
}

TEST(BugTest, PR55003_SextInRegFold) {
  expectMiscompile(BugId::PR55003, R"(
define i8 @f(i8 %x) {
  %a = shl i8 %x, 3
  %b = ashr i8 %a, 3
  ret i8 %b
}
)",
                   "lowering");
}

TEST(BugTest, PR55201_DisguisedRotateMasks) {
  // The mask keeps only some of the rotated bits; folding to fshl is wrong.
  expectMiscompile(BugId::PR55201, R"(
define i32 @f(i32 %x) {
  %hi = shl i32 %x, 8
  %himask = and i32 %hi, 65280
  %lo = lshr i32 %x, 24
  %r = or i32 %himask, %lo
  ret i32 %r
}
)",
                   "lowering");
}

TEST(BugTest, PR55129_ZeroWidthBitfieldExtract) {
  // Paper Listing 18.
  expectMiscompile(BugId::PR55129, R"(
define i64 @f(i1 %b) {
  %1 = zext i1 %b to i64
  %2 = lshr i64 %1, 1
  ret i64 %2
}
)",
                   "lowering");
}

TEST(BugTest, PR55271_AbsExpansionPoison) {
  // abs with is_int_min_poison == false must NOT gain nsw on the negate.
  expectMiscompile(BugId::PR55271, R"(
define i8 @f(i8 %x) {
  %r = call i8 @llvm.abs.i8(i8 %x, i1 false)
  ret i8 %r
}
)",
                   "lowering");
}

TEST(BugTest, PR55284_OrAndCondition) {
  // C1 = 12 is a subset of C2 = 15: the buggy condition folds, wrongly.
  expectMiscompile(BugId::PR55284, R"(
define i8 @f(i8 %x) {
  %o = or i8 %x, 12
  %a = and i8 %o, 15
  ret i8 %a
}
)",
                   "lowering");
}

TEST(BugTest, PR55287_URemUDivRecompose) {
  // mul uses a different value than the divisor: must not fold to urem.
  expectMiscompile(BugId::PR55287, R"(
define i8 @f(i8 %x, i8 %y, i8 %z) {
  %d = udiv i8 %x, %y
  %m = mul i8 %d, %z
  %r = sub i8 %x, %m
  ret i8 %r
}
)",
                   "lowering");
}

TEST(BugTest, PR55296_PromotedURemBits) {
  // The divisor 300 does not fit i8; narrowing must be rejected.
  expectMiscompile(BugId::PR55296, R"(
define i8 @f(i8 %x) {
  %z = zext i8 %x to i32
  %r = urem i32 %z, 300
  %t = trunc i32 %r to i8
  ret i8 %t
}
)",
                   "lowering");
}

TEST(BugTest, PR55342_PromotedConstantUGT) {
  // Paper Listing 19 shape: unsigned compare with a negative constant.
  expectMiscompile(BugId::PR55342, R"(
define i32 @f(i8 %v) {
  %1 = sub i8 -66, 0
  %2 = add i8 %1, %v
  %3 = icmp ugt i8 %2, -31
  %4 = select i1 %3, i32 1, i32 0
  ret i32 %4
}
)",
                   "lowering");
}

TEST(BugTest, PR55490_PromotedConstantULT) {
  expectMiscompile(BugId::PR55490, R"(
define i32 @f(i8 %v) {
  %1 = icmp ult i8 %v, -10
  %2 = select i1 %1, i32 1, i32 0
  ret i32 %2
}
)",
                   "lowering");
}

TEST(BugTest, PR55627_PromotedConstantEQ) {
  expectMiscompile(BugId::PR55627, R"(
define i32 @f(i8 %v) {
  %1 = icmp eq i8 %v, -3
  %2 = select i1 %1, i32 1, i32 0
  ret i32 %2
}
)",
                   "lowering");
}

TEST(BugTest, PR55484_BSwapHWordLow) {
  // Same shift pair at i32: only the low half-word swaps; bswap is wrong.
  expectMiscompile(BugId::PR55484, R"(
define i32 @f(i32 %x) {
  %hi = shl i32 %x, 8
  %lo = lshr i32 %x, 8
  %r = or i32 %hi, %lo
  ret i32 %r
}
)",
                   "lowering");
}

TEST(BugTest, PR55833_BitfieldExtractBoundary) {
  // C1 + n == W - 1: lshr 2, mask 0x1F (n=5) at i8.
  expectMiscompile(BugId::PR55833, R"(
define i8 @f(i8 %x) {
  %s = lshr i8 %x, 2
  %r = and i8 %s, 31
  ret i8 %r
}
)",
                   "lowering");
}

TEST(BugTest, PR58109_USubSatExpansion) {
  expectMiscompile(BugId::PR58109, R"(
define i8 @f(i8 %x, i8 %y) {
  %r = call i8 @llvm.usub.sat.i8(i8 %x, i8 %y)
  ret i8 %r
}
)",
                   "lowering");
}

TEST(BugTest, PR58321_FrozenPoisonDropped) {
  // Dropping the freeze makes the function return poison where the source
  // returned a frozen (concrete) value.
  expectMiscompile(BugId::PR58321, R"(
define i8 @f(i8 %x) {
  %a = add nsw i8 %x, 100
  %fr = freeze i8 %a
  ret i8 %fr
}
)",
                   "lowering");
}

TEST(BugTest, PR58431_ZExtSelectionMask) {
  expectMiscompile(BugId::PR58431, R"(
define i16 @f(i16 %x) {
  %t = trunc i16 %x to i8
  %z = zext i8 %t to i16
  ret i16 %z
}
)",
                   "lowering");
}

TEST(BugTest, PR59836_ZextMulPrecondition) {
  // i8 zext * i8 zext into i12: sums to 16 > 12 — nuw would be wrong.
  expectMiscompile(BugId::PR59836, R"(
define i12 @f(i8 %a, i8 %b) {
  %za = zext i8 %a to i12
  %zb = zext i8 %b to i12
  %m = mul i12 %za, %zb
  ret i12 %m
}
)",
                   "instcombine");
}

//===----------------------------------------------------------------------===//
// Crash rows.
//===----------------------------------------------------------------------===//

TEST(BugTest, PR52884_SMaxNuwNsw) {
  // Paper Listing 15, verbatim.
  expectCrash(BugId::PR52884, R"(
define i8 @f(i8 %x) {
  %1 = add nuw nsw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}
)",
              "instcombine");
}

TEST(BugTest, PR51618_GVNPhiUndef) {
  expectCrash(BugId::PR51618, R"(
define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [ %x, %a ], [ undef, %b ]
  ret i32 %p
}
)",
              "gvn");
}

TEST(BugTest, PR56377_ExtractExtractShuffle) {
  expectCrash(BugId::PR56377, R"(
define i8 @f(<4 x i8> %v, <4 x i8> %w) {
  %s = shufflevector <4 x i8> %v, <4 x i8> %w, <4 x i32> <i32 0, i32 5, i32 2, i32 7>
  %r = extractelement <4 x i8> %s, i32 9
  ret i8 %r
}
)",
              "vector-combine");
}

TEST(BugTest, PR56463_CallBadSignature) {
  expectCrash(BugId::PR56463, R"(
declare void @ext(ptr)

define void @f() {
  call void @ext(ptr poison)
  ret void
}
)",
              "instcombine");
}

TEST(BugTest, PR56945_ConstantFoldPoison) {
  expectCrash(BugId::PR56945, R"(
define i8 @f() {
  %m = call i8 @llvm.smax.i8(i8 poison, i8 3)
  ret i8 %m
}
)",
              "constfold");
}

TEST(BugTest, PR56968_PoisonShiftDetection) {
  // Shift amount EQUAL to the bit width: the uncovered condition.
  expectCrash(BugId::PR56968, R"(
define i8 @f(i8 %x) {
  %r = shl i8 %x, 8
  ret i8 %r
}
)",
              "instsimplify");
}

TEST(BugTest, PR56981_CtlzAssertion) {
  expectCrash(BugId::PR56981, R"(
define i8 @f() {
  %r = call i8 @llvm.ctlz.i8(i8 0, i1 true)
  ret i8 %r
}
)",
              "constfold");
}

TEST(BugTest, PR58423_CSEBuilderReuse) {
  // The rotate's shifts have extra uses.
  expectCrash(BugId::PR58423, R"(
define i32 @f(i32 %x) {
  %hi = shl i32 %x, 5
  %lo = lshr i32 %x, 27
  %r = or i32 %hi, %lo
  %extra = add i32 %hi, %r
  ret i32 %extra
}
)",
              "lowering");
}

TEST(BugTest, PR58425_UDivLegalizer) {
  expectCrash(BugId::PR58425, R"(
define i50 @f(i50 %x, i50 %y) {
  %nz = icmp ne i50 %y, 0
  call void @llvm.assume(i1 %nz)
  %r = udiv i50 %x, %y
  ret i50 %r
}
)",
              "lowering");
}

TEST(BugTest, PR59757_PrintfSignature) {
  expectCrash(BugId::PR59757, R"(
declare i32 @printf(ptr)

define i32 @f() {
  %r = call i32 @printf(ptr null)
  ret i32 %r
}
)",
              "lowering");
}

TEST(BugTest, PR64687_NonPow2Alignment) {
  // Paper Listing 16's 123-byte alignment, as a load annotation.
  expectCrash(BugId::PR64687, R"(
define i8 @f(ptr dereferenceable(246) %p) {
  %v = load i8, ptr %p, align 123
  ret i8 %v
}
)",
              "infer-alignment");
}

TEST(BugTest, PR64661_MoveAutoInitAssert) {
  expectCrash(BugId::PR64661, R"(
declare void @use(ptr)

define void @f() {
  %p = alloca i32, align 4
  store i32 0, ptr %p, align 4
  store i32 7, ptr %p, align 4
  call void @use(ptr %p)
  ret void
}
)",
              "move-auto-init");
}

TEST(BugTest, PR72035_SROASliceRewriter) {
  expectCrash(BugId::PR72035, R"(
define i32 @f(i32 %x) {
  %p = alloca i32, align 4
  %q = getelementptr i8, ptr %p, i64 1
  store i32 %x, ptr %p, align 4
  %v = load i32, ptr %p, align 4
  ret i32 %v
}
)",
              "sroa");
}

TEST(BugTest, PR72034_ScalarizePoisonLane) {
  expectCrash(BugId::PR72034, R"(
define i8 @f(<2 x i8> %v) {
  %s = add <2 x i8> %v, <i8 3, i8 poison>
  %r = extractelement <2 x i8> %s, i32 0
  ret i8 %r
}
)",
              "vector-combine");
}

//===----------------------------------------------------------------------===//
// Registry sanity.
//===----------------------------------------------------------------------===//

TEST(BugTest, TableHas33Rows) {
  EXPECT_EQ(bugTable().size(), 33u);
  unsigned Crashes = 0, Miscompiles = 0;
  for (const BugInfo &B : bugTable())
    (B.IsCrash ? Crashes : Miscompiles)++;
  EXPECT_EQ(Miscompiles, 19u);
  EXPECT_EQ(Crashes, 14u);
}

TEST(BugTest, EnableDisable) {
  BugInjectionContext Ctx;
  EXPECT_FALSE(Ctx.isEnabled(BugId::PR53252));
  Ctx.enable(BugId::PR53252);
  EXPECT_TRUE(Ctx.isEnabled(BugId::PR53252));
  Ctx.enableAll();
  for (const BugInfo &B : bugTable())
    EXPECT_TRUE(Ctx.isEnabled(B.Id));
  Ctx.disableAll();
  EXPECT_FALSE(Ctx.isEnabled(BugId::PR53252));
  EXPECT_TRUE(Ctx.empty());
}

TEST(BugTest, AmbientContextScopes) {
  // No ambient context: every defect reads as disabled.
  EXPECT_EQ(activeBugContext(), nullptr);
  EXPECT_FALSE(isBugEnabled(BugId::PR53252));
  {
    ScopedBug Guard(BugId::PR53252);
    EXPECT_TRUE(isBugEnabled(BugId::PR53252));
    EXPECT_FALSE(isBugEnabled(BugId::PR50693));
    {
      // Scopes nest and restore the previous context on exit.
      BugInjectionContext Inner{BugId::PR50693};
      BugContextScope Scope(&Inner);
      EXPECT_TRUE(isBugEnabled(BugId::PR50693));
      EXPECT_FALSE(isBugEnabled(BugId::PR53252));
    }
    EXPECT_TRUE(isBugEnabled(BugId::PR53252));
  }
  EXPECT_FALSE(isBugEnabled(BugId::PR53252));
  EXPECT_EQ(activeBugContext(), nullptr);
}

TEST(BugTest, InfoLookup) {
  const BugInfo &B = bugInfo(BugId::PR59836);
  EXPECT_STREQ(B.IssueId, "59836");
  EXPECT_STREQ(B.Component, "InstCombine");
  EXPECT_FALSE(B.IsCrash);
}
