//===- tests/supervisor_test.cpp - Multi-process campaign supervisor --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests for the -fanout supervisor: shard leases with
/// heartbeat deadlines, bounded-backoff restarts of killed and wedged
/// children, crash attribution through retry-then-skip, and the
/// degradation ladder — a permanently lost lease is counted and flagged,
/// never a silent gap, while every recovered fault leaves the
/// deterministic report section byte-identical to an undisturbed -j1 run.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/RunReport.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "support/FaultPlane.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

const char *TwoBugCorpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

FuzzOptions twoBugOptions(uint64_t Iterations) {
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = Iterations;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  Opts.Bugs.enable(BugId::PR52884);
  Opts.Bugs.enable(BugId::PR50693);
  return Opts;
}

std::string deterministicReportPart(const CampaignEngine &Engine,
                                    const FuzzOptions &Opts) {
  RunReportConfig RC;
  RC.Tool = "supervisor_test";
  RC.Passes = Opts.Passes;
  RC.Iterations = Opts.Iterations;
  RC.BaseSeed = Opts.BaseSeed;
  RC.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
  std::ostringstream OS;
  writeRunReport(OS, RC, Engine.stats(), Engine.bugs(), Engine.registry());
  std::string R = OS.str();
  size_t Pos = R.find("\"volatile\"");
  EXPECT_NE(Pos, std::string::npos);
  return R.substr(0, Pos);
}

/// Every test starts and ends with the process-global fault plane
/// disarmed, so the suite stays order-independent.
struct SupervisorTest : ::testing::Test {
  void SetUp() override { FaultPlane::instance().reset(); }
  void TearDown() override { FaultPlane::instance().reset(); }

  /// Fast-retry fanout options so injected deaths cost milliseconds.
  static FuzzOptions fanoutOptions(uint64_t Iterations, unsigned Fanout) {
    FuzzOptions Opts = twoBugOptions(Iterations);
    Opts.Survival.Fanout = Fanout;
    Opts.Survival.RetryBaseDelay = 0.005;
    Opts.Survival.RetryMaxDelay = 0.05;
    return Opts;
  }
};

} // namespace

TEST_F(SupervisorTest, FanoutMatchesThreadedDeterministicSection) {
  // With nothing failing, the supervisor must be invisible in the
  // deterministic report: children checkpoint their shard slices and the
  // harvest merges them exactly like the threaded engine.
  const uint64_t Iterations = 60;
  FuzzOptions Plain = twoBugOptions(Iterations);
  CampaignEngine Ref(Plain, 1);
  Ref.loadModule(parseOk(TwoBugCorpus));
  Ref.run();
  ASSERT_TRUE(Ref.configError().empty()) << Ref.configError();
  ASSERT_GT(Ref.bugs().size(), 0u);

  FuzzOptions Fan = fanoutOptions(Iterations, 3);
  CampaignEngine Engine(Fan, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_FALSE(Engine.degraded());
  EXPECT_FALSE(Engine.interrupted());
  EXPECT_TRUE(Engine.lostShards().empty());
  EXPECT_EQ(deterministicReportPart(Engine, Fan),
            deterministicReportPart(Ref, Plain));
}

TEST_F(SupervisorTest, InjectedChildKillIsReLeasedByteForByte) {
  // The acceptance scenario: SIGKILL one child mid-campaign. The lease
  // must be retried with backoff and the completed report must be
  // byte-identical to the undisturbed -j1 run — an external kill is never
  // attributed to the seed that happened to be in flight.
  const uint64_t Iterations = 60;
  FuzzOptions Plain = twoBugOptions(Iterations);
  CampaignEngine Ref(Plain, 1);
  Ref.loadModule(parseOk(TwoBugCorpus));
  Ref.run();
  ASSERT_TRUE(Ref.configError().empty()) << Ref.configError();

  std::string Err;
  ASSERT_TRUE(FaultPlane::instance().arm("supervisor.kill:nth:1", Err))
      << Err;
  FuzzOptions Fan = fanoutOptions(Iterations, 3);
  CampaignEngine Engine(Fan, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_FALSE(Engine.degraded());
  EXPECT_TRUE(Engine.lostShards().empty());
  EXPECT_GE(Engine.registry().counterValue("survive.supervisor.restarts"),
            1u);
  EXPECT_EQ(deterministicReportPart(Engine, Fan),
            deterministicReportPart(Ref, Plain));

  // The fault verifiably fired exactly once.
  auto C = FaultPlane::instance().counters();
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].Triggers, 1u);
}

TEST_F(SupervisorTest, WedgedChildIsKilledByHeartbeatDeadline) {
  // supervisor.wedge makes the child hang without beating; the lease
  // deadline must reap it. Children re-arm from the parent's table at
  // every fork, so each respawn wedges again and every lease eventually
  // exhausts its budget: the campaign must still complete — degraded,
  // with exact accounting, never hung.
  std::string Err;
  ASSERT_TRUE(FaultPlane::instance().arm("supervisor.wedge:nth:1", Err))
      << Err;
  FuzzOptions Fan = fanoutOptions(30, 2);
  Fan.Survival.RetryMaxAttempts = 2;
  Fan.Survival.LeaseHeartbeatSeconds = 0.2;
  CampaignEngine Engine(Fan, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_GE(Engine.registry().counterValue("survive.supervisor.wedges"),
            1u);
  EXPECT_TRUE(Engine.degraded());
  EXPECT_EQ(Engine.lostShards().size(), 2u);
}

TEST_F(SupervisorTest, ExhaustedRetriesDegradeWithExactAccounting) {
  // Fork failure on every attempt: every lease dies without running a
  // single iteration. The ladder demands exact accounting — each shard
  // flagged lost with its full slice, the engine degraded, the campaign
  // interrupted — and an incident note for the operator, never a silent
  // gap or a hang.
  std::string Err;
  ASSERT_TRUE(FaultPlane::instance().arm("supervisor.fork:every:1", Err))
      << Err;
  const uint64_t Iterations = 40;
  FuzzOptions Fan = fanoutOptions(Iterations, 3);
  Fan.Survival.RetryMaxAttempts = 2;
  CampaignEngine Engine(Fan, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_TRUE(Engine.degraded());
  EXPECT_TRUE(Engine.interrupted());
  ASSERT_EQ(Engine.lostShards().size(), 3u);
  uint64_t Lost = 0;
  for (const auto &[Shard, Iters] : Engine.lostShards())
    Lost += Iters;
  EXPECT_EQ(Lost, Iterations);
  EXPECT_EQ(S.MutantsGenerated, 0u);
  const StatRegistry &R = Engine.registry();
  EXPECT_EQ(R.counterValue("survive.degraded.shards"), 3u);
  EXPECT_EQ(R.counterValue("survive.degraded.lost_iterations"),
            Iterations);
  EXPECT_GE(R.counterValue("survive.supervisor.fork_failures"), 3u);
  EXPECT_NE(Engine.isolateError().find("lost"), std::string::npos)
      << Engine.isolateError();
}

TEST_F(SupervisorTest, RepeatedChildDeathSkipsSeedAndRecordsCrashBug) {
  // A pass that SIGSEGVs deterministically: the first death at a seed is
  // retried (it could have been an external kill), the second pins it,
  // skips the seed and synthesizes a crash bug — so the campaign
  // completes with every crashing seed recorded and nothing lost.
  FuzzOptions Opts;
  Opts.Passes = "test-crash,dce";
  Opts.Iterations = 3;
  Opts.BaseSeed = 1;
  Opts.Survival.Fanout = 1;
  Opts.Survival.RetryBaseDelay = 0.005;
  Opts.Survival.RetryMaxDelay = 0.05;
  CampaignEngine Engine(Opts, 1);
  Engine.loadModule(parseOk(R"(
define i8 @crashme(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
)"));
  const FuzzStats &S = Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_FALSE(Engine.degraded());
  EXPECT_EQ(S.Crashes, 3u);
  ASSERT_EQ(Engine.bugs().size(), 3u);
  for (const BugRecord &B : Engine.bugs()) {
    EXPECT_EQ(B.Kind, BugRecord::Crash);
    EXPECT_NE(B.Detail.find("SIGSEGV"), std::string::npos) << B.Detail;
    EXPECT_NE(B.Detail.find("supervised shard"), std::string::npos)
        << B.Detail;
    EXPECT_FALSE(B.MutantIR.empty());
  }
  EXPECT_EQ(Engine.registry().counterValue("bug.crash"), 3u);
  // Two deaths per seed before the skip.
  EXPECT_GE(Engine.registry().counterValue("survive.supervisor.restarts"),
            3u);
}

TEST_F(SupervisorTest, FanoutRejectsIncompatibleConfigs) {
  // Time-limited fan-out has no fixed lease partition.
  FuzzOptions Timed = twoBugOptions(0);
  Timed.TimeLimitSeconds = 0.1;
  Timed.Survival.Fanout = 2;
  CampaignEngine T(Timed, 1);
  T.loadModule(parseOk(TwoBugCorpus));
  T.run();
  EXPECT_NE(T.configError().find("iteration-bounded"), std::string::npos)
      << T.configError();

  // Two process supervisors cannot share the children.
  FuzzOptions Both = twoBugOptions(20);
  Both.Survival.Fanout = 2;
  Both.Survival.Isolate = true;
  CampaignEngine B(Both, 1);
  B.loadModule(parseOk(TwoBugCorpus));
  B.run();
  EXPECT_NE(B.configError().find("-fanout"), std::string::npos)
      << B.configError();

  // Feedback has no epoch barrier across supervised children.
  FuzzOptions Fb = twoBugOptions(20);
  Fb.Survival.Fanout = 2;
  Fb.Feedback.Enabled = true;
  CampaignEngine F(Fb, 1);
  F.loadModule(parseOk(TwoBugCorpus));
  F.run();
  EXPECT_NE(F.configError().find("-feedback"), std::string::npos)
      << F.configError();
}
