//===- tests/forensics_test.cpp - Tracing and forensics-bundle tests --------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Tests for the observability layer: the TraceRecorder flight recorder
/// (ring semantics, Chrome trace output), the minimal JSON reader the
/// replay path depends on, the applied-mutation trail (RNG-neutral,
/// consistent with the telemetry counters), and the end-to-end forensics
/// guarantee — an injected-defect campaign writes bundles that -replay
/// reproduces with the identical verdict and counterexample, at any
/// worker count.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/Forensics.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "parser/Printer.h"
#include "support/JSON.h"
#include "support/TraceRecorder.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <map>
#include <sstream>

using namespace alive;
namespace fs = std::filesystem;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// Same near-miss corpus as campaign_test.cpp: surfaces a simulated
/// InstCombine crash (PR52884) and miscompilation (PR50693).
const char *TwoBugCorpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

FuzzOptions twoBugOptions(uint64_t Iterations) {
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = Iterations;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  Opts.Bugs.enable(BugId::PR52884);
  Opts.Bugs.enable(BugId::PR50693);
  return Opts;
}

/// A fresh, empty scratch directory under the test temp root; removed by
/// the returned guard on scope exit.
struct ScratchDir {
  fs::path Path;
  explicit ScratchDir(const std::string &Name)
      : Path(fs::path(::testing::TempDir()) / Name) {
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() { fs::remove_all(Path); }
};

std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceRecorder: the flight-recorder ring.
//===----------------------------------------------------------------------===//

TEST(TraceRecorderTest, RecordsSpansAndInstantsInOrder) {
  TraceRecorder R(16);
  uint64_t T0 = TraceRecorder::now();
  R.span("mutate", T0, T0 + 1000, /*Seed=*/7);
  R.instant("bug.miscompile", /*Seed=*/7, R.intern("PR50693"));
  R.span("verify", T0 + 1000, T0 + 5000, 7, R.intern("@f"));

  auto Events = R.events();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(R.dropped(), 0u);
  EXPECT_STREQ(Events[0].Name, "mutate");
  EXPECT_EQ(Events[0].DurNanos, 1000u);
  EXPECT_EQ(Events[0].Seed, 7u);
  EXPECT_STREQ(Events[1].Name, "bug.miscompile");
  EXPECT_EQ(Events[1].DurNanos, TraceRecorder::Instant);
  EXPECT_STREQ(Events[1].Detail, "PR50693");
  EXPECT_STREQ(Events[2].Detail, "@f");
}

TEST(TraceRecorderTest, RingOverwriteKeepsTheNewestEvents) {
  TraceRecorder R(4);
  std::vector<const char *> Names = {"e0", "e1", "e2", "e3", "e4",
                                     "e5", "e6", "e7", "e8", "e9"};
  for (uint64_t I = 0; I != 10; ++I)
    R.span(Names[I], I * 10, I * 10 + 5, I);

  EXPECT_EQ(R.capacity(), 4u);
  EXPECT_EQ(R.size(), 4u);
  EXPECT_EQ(R.dropped(), 6u);
  auto Events = R.events();
  ASSERT_EQ(Events.size(), 4u);
  // Flight-recorder semantics: the tail of the timeline survives.
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_STREQ(Events[I].Name, Names[6 + I]);
    EXPECT_EQ(Events[I].Seed, 6 + I);
  }
}

TEST(TraceRecorderTest, InternReturnsStablePointers) {
  TraceRecorder R(8);
  const char *A = R.intern("function_a");
  // Force many inserts; std::set nodes never move, so A must stay valid
  // and equal-by-pointer for repeated interning of the same label.
  for (int I = 0; I != 100; ++I)
    R.intern("label_" + std::to_string(I));
  EXPECT_EQ(R.intern("function_a"), A);
  EXPECT_STREQ(A, "function_a");
}

TEST(TraceRecorderTest, DisabledSpanRecordsNothing) {
  // The disabled path: a TraceSpan over a null recorder must be inert
  // (this is the "one pointer test" cost model — nothing to observe, but
  // it must not crash or dereference).
  { TraceSpan S(nullptr, "mutate", 1); }
  TraceRecorder R(4);
  { TraceSpan S(&R, "mutate", 1); }
  EXPECT_EQ(R.size(), 1u);
}

TEST(TraceRecorderTest, ChromeTraceIsParsableAndComplete) {
  TraceRecorder W0(8), W1(8);
  uint64_t T0 = TraceRecorder::now();
  W0.span("mutate", T0, T0 + 2000, 3);
  W0.instant("bug.crash", 3, W0.intern("PR52884"));
  W1.span("verify", T0 + 500, T0 + 1500, 4, W1.intern("@g"));

  std::ostringstream OS;
  writeChromeTrace(OS, {&W0, &W1}, {"worker 0", "worker 1"});

  // The file we just wrote must parse with our own JSON reader.
  JSONValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJSON(OS.str(), Doc, Err)) << Err;
  const JSONValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  unsigned Metadata = 0, Spans = 0, Instants = 0;
  std::vector<std::string> TrackNames;
  for (const JSONValue &E : Events->Arr) {
    std::string Ph = E.getString("ph");
    if (Ph == "M") {
      ++Metadata;
      EXPECT_EQ(E.getString("name"), "thread_name");
      const JSONValue *A = E.find("args");
      ASSERT_NE(A, nullptr);
      TrackNames.push_back(A->getString("name"));
    } else if (Ph == "X") {
      ++Spans;
      EXPECT_GT(E.getUInt("dur", 0), 0u);
    } else if (Ph == "i") {
      ++Instants;
    }
  }
  EXPECT_EQ(Metadata, 2u);
  EXPECT_EQ(Spans, 2u);
  EXPECT_EQ(Instants, 1u);
  ASSERT_EQ(TrackNames.size(), 2u);
  EXPECT_EQ(TrackNames[0], "worker 0");
  EXPECT_EQ(TrackNames[1], "worker 1");
}

//===----------------------------------------------------------------------===//
// The JSON reader the replay path depends on.
//===----------------------------------------------------------------------===//

TEST(JSONTest, KeepsExactUInt64) {
  // PRNG seeds exceed double's 53-bit mantissa; the parser must keep the
  // exact integer alongside the double.
  JSONValue V;
  std::string Err;
  ASSERT_TRUE(parseJSON("{\"seed\": 18446744073709551615}", V, Err)) << Err;
  EXPECT_EQ(V.getUInt("seed"), 18446744073709551615ull);
}

TEST(JSONTest, ParsesEscapesAndNesting) {
  JSONValue V;
  std::string Err;
  ASSERT_TRUE(parseJSON(
      R"({"s": "a\n\"b\"\\A", "arr": [1, true, null, {"k": -2.5}]})", V,
      Err))
      << Err;
  EXPECT_EQ(V.getString("s"), "a\n\"b\"\\A");
  const JSONValue *Arr = V.find("arr");
  ASSERT_NE(Arr, nullptr);
  ASSERT_TRUE(Arr->isArray());
  ASSERT_EQ(Arr->Arr.size(), 4u);
  EXPECT_EQ(Arr->Arr[0].Int, 1u);
  EXPECT_TRUE(Arr->Arr[1].B);
  EXPECT_EQ(Arr->Arr[2].K, JSONValue::Null);
  EXPECT_DOUBLE_EQ(Arr->Arr[3].find("k")->Num, -2.5);
}

TEST(JSONTest, RejectsMalformedDocuments) {
  JSONValue V;
  std::string Err;
  EXPECT_FALSE(parseJSON("{\"a\": 1,}", V, Err));
  EXPECT_FALSE(parseJSON("{\"a\": 1} trailing", V, Err));
  EXPECT_FALSE(parseJSON("[1, 2", V, Err));
  EXPECT_FALSE(parseJSON("", V, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(JSONTest, AccessorsReturnDefaultsOnMismatch) {
  JSONValue V;
  std::string Err;
  ASSERT_TRUE(parseJSON("{\"n\": 5, \"s\": \"x\"}", V, Err));
  EXPECT_EQ(V.getString("n", "dflt"), "dflt");
  EXPECT_EQ(V.getUInt("s", 42), 42u);
  EXPECT_EQ(V.find("missing"), nullptr);
  EXPECT_EQ(V.getBool("missing", true), true);
}

//===----------------------------------------------------------------------===//
// The applied-mutation trail.
//===----------------------------------------------------------------------===//

TEST(ForensicsTest, TrailRecordingIsRNGNeutral) {
  // §III-E cornerstone: recording the trail must not consume randomness,
  // so trailed and untrailed regenerations are byte-identical.
  FuzzOptions Opts = twoBugOptions(0);
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  for (uint64_t Seed : {1ull, 99ull, 123456789ull}) {
    MutationTrail Trail;
    auto WithTrail = Loop.makeMutant(Seed, Trail);
    auto Without = Loop.makeMutant(Seed);
    ASSERT_NE(WithTrail, nullptr);
    EXPECT_EQ(printModule(*WithTrail), printModule(*Without));
    // Every entry names a function of the module.
    for (const MutationTrailEntry &E : Trail) {
      EXPECT_FALSE(E.Function.empty());
      EXPECT_FALSE(E.Detail.empty());
    }
  }
}

TEST(ForensicsTest, TrailCountsMatchRegistryFamilyCounters) {
  // Regenerating the trail for every campaign seed reproduces exactly the
  // per-family applied counts the StatRegistry aggregated live.
  const uint64_t Iterations = 100;
  FuzzOptions Opts = twoBugOptions(Iterations);
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();

  std::map<std::string, uint64_t> FromTrails;
  uint64_t Entries = 0;
  for (uint64_t I = 0; I != Iterations; ++I) {
    MutationTrail Trail;
    Loop.makeMutant(Opts.BaseSeed + I, Trail);
    for (const MutationTrailEntry &E : Trail) {
      ++FromTrails[mutationKindName(E.Kind)];
      ++Entries;
    }
  }
  EXPECT_EQ(Entries, S.MutationsApplied);

  const StatRegistry &R = Loop.registry();
  for (unsigned K = 0; K != (unsigned)MutationKind::NumKinds; ++K) {
    std::string Family = mutationKindName((MutationKind)K);
    EXPECT_EQ(FromTrails[Family],
              R.counterValue("mutation." + Family + ".applied"))
        << "family " << Family;
  }
}

//===----------------------------------------------------------------------===//
// Forensics bundles: write, replay, tamper, parallel determinism.
//===----------------------------------------------------------------------===//

TEST(ForensicsTest, CampaignWritesReplayableBundles) {
  ScratchDir Dir("amr-forensics-bundles");
  // 400 iterations: enough for this corpus to surface both bug kinds, so
  // the replay check covers crash and miscompile (verdict) bundles.
  FuzzOptions Opts = twoBugOptions(400);
  Opts.BugBundleDir = Dir.Path.string();
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();

  ASSERT_GT(Loop.bugs().size(), 0u)
      << "corpus must surface bugs for the replay check to mean anything";
  EXPECT_GT(S.Crashes, 0u);
  EXPECT_GT(S.RefinementFailures, 0u)
      << "no miscompile in range: verdict bundles untested";
  EXPECT_GT(S.BundlesWritten, 0u);
  EXPECT_EQ(S.BundleFailures, 0u);
  EXPECT_TRUE(Loop.bundleError().empty()) << Loop.bundleError();

  for (const BugRecord &B : Loop.bugs()) {
    ASSERT_FALSE(B.BundlePath.empty())
        << "bug seed " << B.MutantSeed << " has no bundle";
    ASSERT_TRUE(fs::exists(fs::path(B.BundlePath) / "manifest.json"));
    ASSERT_TRUE(fs::exists(fs::path(B.BundlePath) / "original.ll"));

    // The manifest is valid JSON at the pinned schema version, and its
    // record echoes the bug.
    JSONValue Manifest;
    std::string Err;
    ASSERT_TRUE(parseJSON(slurp(fs::path(B.BundlePath) / "manifest.json"),
                          Manifest, Err))
        << Err;
    EXPECT_EQ(Manifest.getUInt("schema_version"), BundleManifestSchemaVersion);
    const JSONValue *Rec = Manifest.find("record");
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(Rec->getUInt("seed"), B.MutantSeed);

    // The tentpole guarantee: the recorded verdict reproduces.
    ReplayResult R = replayBundle(B.BundlePath);
    EXPECT_TRUE(R.Ok) << B.BundlePath << ": " << R.Error;
    EXPECT_EQ(R.Seed, B.MutantSeed);
    EXPECT_EQ(R.ActualVerdict, R.ExpectedVerdict);
  }
}

TEST(ForensicsTest, ParallelBundlesAreByteIdenticalToSequential) {
  // -j4 == -j1, down to the bundle bytes: same directory names, same
  // manifests, same IR files.
  ScratchDir SeqDir("amr-forensics-j1"), ParDir("amr-forensics-j4");
  FuzzOptions Opts = twoBugOptions(150);

  auto RunInto = [&](const fs::path &Dir, unsigned Jobs) {
    FuzzOptions O = Opts;
    O.BugBundleDir = Dir.string();
    CampaignEngine Engine(O, Jobs);
    Engine.loadModule(parseOk(TwoBugCorpus));
    const FuzzStats &S = Engine.run();
    EXPECT_EQ(S.BundleFailures, 0u);
    return S.BundlesWritten;
  };
  uint64_t NSeq = RunInto(SeqDir.Path, 1);
  uint64_t NPar = RunInto(ParDir.Path, 4);
  ASSERT_GT(NSeq, 0u);
  EXPECT_EQ(NSeq, NPar);

  std::vector<fs::path> SeqFiles;
  for (const auto &E : fs::recursive_directory_iterator(SeqDir.Path))
    if (E.is_regular_file())
      SeqFiles.push_back(fs::relative(E.path(), SeqDir.Path));
  ASSERT_FALSE(SeqFiles.empty());
  for (const fs::path &Rel : SeqFiles) {
    ASSERT_TRUE(fs::exists(ParDir.Path / Rel)) << Rel;
    EXPECT_EQ(slurp(SeqDir.Path / Rel), slurp(ParDir.Path / Rel)) << Rel;
  }
  // No extra files on the parallel side either.
  size_t ParFiles = 0;
  for (const auto &E : fs::recursive_directory_iterator(ParDir.Path))
    if (E.is_regular_file())
      ++ParFiles;
  EXPECT_EQ(SeqFiles.size(), ParFiles);
}

TEST(ForensicsTest, TamperedBundleFailsReplay) {
  ScratchDir Dir("amr-forensics-tamper");
  FuzzOptions Opts = twoBugOptions(150);
  Opts.BugBundleDir = Dir.Path.string();
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  Loop.run();
  ASSERT_GT(Loop.bugs().size(), 0u);

  // Every bundle kind stores the pre-optimization mutant, so any will do.
  std::string Bundle = Loop.bugs().front().BundlePath;
  ASSERT_FALSE(Bundle.empty());
  ASSERT_TRUE(fs::exists(fs::path(Bundle) / "mutant.ll"));
  ASSERT_TRUE(replayBundle(Bundle).Ok);

  // Append a comment line to the stored mutant: the regenerated mutant no
  // longer matches byte-for-byte, so replay must refuse.
  {
    std::ofstream Out(fs::path(Bundle) / "mutant.ll", std::ios::app);
    Out << "; tampered\n";
  }
  ReplayResult R = replayBundle(Bundle);
  EXPECT_FALSE(R.Ok);
  EXPECT_FALSE(R.Error.empty());
}

TEST(ForensicsTest, ReplayRejectsMissingOrBrokenBundles) {
  ReplayResult Missing = replayBundle("/nonexistent/amr-bundle");
  EXPECT_FALSE(Missing.Ok);
  EXPECT_FALSE(Missing.Error.empty());

  ScratchDir Dir("amr-forensics-broken");
  {
    std::ofstream Out(Dir.Path / "manifest.json");
    Out << "{\"schema_version\": 999}";
  }
  ReplayResult Broken = replayBundle(Dir.Path.string());
  EXPECT_FALSE(Broken.Ok);
  EXPECT_NE(Broken.Error.find("schema"), std::string::npos) << Broken.Error;
}

TEST(ForensicsTest, OutcomesAreCollectedWithoutBundleDir) {
  // lastOutcomes feeds -replay's comparison; it must be populated even
  // when bundle writing is disabled.
  FuzzOptions Opts = twoBugOptions(150);
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  Loop.run();
  ASSERT_GT(Loop.bugs().size(), 0u);

  uint64_t Seed = Loop.bugs().front().MutantSeed;
  Loop.runIteration(Seed);
  ASSERT_FALSE(Loop.lastOutcomes().empty());
  const ForensicRecord &FR = Loop.lastOutcomes().front();
  EXPECT_EQ(FR.Seed, Seed);
  EXPECT_FALSE(FR.VerdictSlug.empty());
}

//===----------------------------------------------------------------------===//
// Tracing wired through the loop and engine.
//===----------------------------------------------------------------------===//

TEST(ForensicsTest, TracedCampaignProducesStageAndPassSpans) {
  FuzzOptions Opts = twoBugOptions(30);
  Opts.TraceEnabled = true;
  Opts.TraceCapacity = 1 << 12;
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  Loop.run();

  ASSERT_NE(Loop.trace(), nullptr);
  std::map<std::string, unsigned> ByName;
  for (const TraceRecorder::Event &E : Loop.trace()->events())
    ++ByName[E.Name];
  EXPECT_GT(ByName["mutate"], 0u);
  EXPECT_GT(ByName["optimize"], 0u);
  EXPECT_GT(ByName["verify"], 0u);
  EXPECT_GT(ByName["pass.instcombine"], 0u);
  // The injected defects fire at least once in 30 iterations of this
  // corpus, leaving bug instants on the timeline.
  EXPECT_GT(ByName["bug.crash"] + ByName["bug.miscompile"], 0u);
}

TEST(ForensicsTest, EngineMergesWorkerTracksIntoOneTimeline) {
  ScratchDir Dir("amr-forensics-trace");
  FuzzOptions Opts = twoBugOptions(40);
  Opts.TraceEnabled = true;
  CampaignEngine Engine(Opts, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();

  fs::path TracePath = Dir.Path / "trace.json";
  std::string Err;
  ASSERT_TRUE(Engine.writeTrace(TracePath.string(), Err)) << Err;

  JSONValue Doc;
  ASSERT_TRUE(parseJSON(slurp(TracePath), Doc, Err)) << Err;
  const JSONValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  std::vector<std::string> Tracks;
  for (const JSONValue &E : Events->Arr)
    if (E.getString("ph") == "M")
      Tracks.push_back(E.find("args")->getString("name"));
  // One master track plus two worker tracks.
  ASSERT_EQ(Tracks.size(), 3u);
  EXPECT_EQ(Tracks[0], "master");
  EXPECT_EQ(Tracks[1], "worker 0");
  EXPECT_EQ(Tracks[2], "worker 1");
}

TEST(ForensicsTest, UntracedEngineReportsNoTrace) {
  FuzzOptions Opts = twoBugOptions(5);
  CampaignEngine Engine(Opts, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  std::string Err;
  EXPECT_FALSE(Engine.writeTrace("/tmp/never-written.json", Err));
  EXPECT_NE(Err.find("tracing"), std::string::npos) << Err;
}
