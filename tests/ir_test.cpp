//===- tests/ir_test.cpp - IR core unit tests ------------------------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"
#include "ir/Module.h"
#include "parser/Printer.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

/// Builds: define i32 @f(i32 %a, i32 %b) { %s = add %a, %b; ret %s }
Function *buildAddFunction(Module &M) {
  TypeContext &TC = M.getTypes();
  Type *I32 = TC.getIntTy(32);
  Function *F =
      M.createFunction(TC.getFunctionTy(I32, {I32, I32}), "f");
  F->getArg(0)->setName("a");
  F->getArg(1)->setName("b");
  BasicBlock *BB = F->addBlock("entry");
  auto *Add = new BinaryInst(BinaryInst::Add, F->getArg(0), F->getArg(1));
  Add->setName("s");
  BB->append(std::unique_ptr<Instruction>(Add));
  BB->append(std::make_unique<ReturnInst>(Add, TC.getVoidTy()));
  return F;
}

} // namespace

TEST(TypeTest, Interning) {
  Module M;
  TypeContext &TC = M.getTypes();
  EXPECT_EQ(TC.getIntTy(32), TC.getIntTy(32));
  EXPECT_NE(TC.getIntTy(32), TC.getIntTy(33));
  EXPECT_EQ(TC.getVectorTy(TC.getIntTy(8), 4), TC.getVectorTy(TC.getIntTy(8), 4));
  EXPECT_EQ(TC.getFunctionTy(TC.getVoidTy(), {TC.getPointerTy()}),
            TC.getFunctionTy(TC.getVoidTy(), {TC.getPointerTy()}));
}

TEST(TypeTest, Printing) {
  Module M;
  TypeContext &TC = M.getTypes();
  EXPECT_EQ(TC.getIntTy(26)->str(), "i26");
  EXPECT_EQ(TC.getPointerTy()->str(), "ptr");
  EXPECT_EQ(TC.getVectorTy(TC.getIntTy(8), 4)->str(), "<4 x i8>");
  EXPECT_EQ(TC.getVoidTy()->str(), "void");
}

TEST(TypeTest, Predicates) {
  Module M;
  TypeContext &TC = M.getTypes();
  EXPECT_TRUE(TC.getIntTy(1)->isBoolTy());
  EXPECT_FALSE(TC.getIntTy(2)->isBoolTy());
  EXPECT_TRUE(TC.getIntTy(7)->isIntOrIntVectorTy());
  EXPECT_TRUE(TC.getVectorTy(TC.getIntTy(7), 2)->isIntOrIntVectorTy());
  EXPECT_FALSE(TC.getPointerTy()->isIntOrIntVectorTy());
  EXPECT_EQ(TC.getVectorTy(TC.getIntTy(7), 2)->getScalarType(),
            TC.getIntTy(7));
}

TEST(ConstantTest, Interning) {
  Module M;
  ConstantPoolCtx &CP = M.getConstants();
  IntegerType *I32 = M.getTypes().getIntTy(32);
  EXPECT_EQ(CP.getInt(I32, 42), CP.getInt(I32, 42));
  EXPECT_NE(CP.getInt(I32, 42), CP.getInt(I32, 43));
  EXPECT_EQ(CP.getPoison(I32), CP.getPoison(I32));
  EXPECT_NE((Value *)CP.getPoison(I32), (Value *)CP.getUndef(I32));
}

TEST(UseListTest, SetOperandMaintainsUses) {
  Module M;
  Function *F = buildAddFunction(M);
  Argument *A = F->getArg(0), *B = F->getArg(1);
  Instruction *Add = F->getEntryBlock()->getInst(0);
  EXPECT_EQ(A->getNumUses(), 1u);
  cast<User>(Add)->setOperand(0, B);
  EXPECT_EQ(A->getNumUses(), 0u);
  EXPECT_EQ(B->getNumUses(), 2u);
}

TEST(UseListTest, ReplaceAllUsesWith) {
  Module M;
  Function *F = buildAddFunction(M);
  Argument *A = F->getArg(0), *B = F->getArg(1);
  A->replaceAllUsesWith(B);
  EXPECT_EQ(A->getNumUses(), 0u);
  EXPECT_EQ(B->getNumUses(), 2u);
  Instruction *Add = F->getEntryBlock()->getInst(0);
  EXPECT_EQ(cast<BinaryInst>(Add)->getLHS(), B);
}

TEST(UseListTest, DuplicateOperandCountsTwice) {
  Module M;
  TypeContext &TC = M.getTypes();
  Type *I32 = TC.getIntTy(32);
  Function *F = M.createFunction(TC.getFunctionTy(I32, {I32}), "g");
  BasicBlock *BB = F->addBlock("entry");
  auto *Add =
      new BinaryInst(BinaryInst::Mul, F->getArg(0), F->getArg(0));
  BB->append(std::unique_ptr<Instruction>(Add));
  BB->append(std::make_unique<ReturnInst>(Add, TC.getVoidTy()));
  EXPECT_EQ(F->getArg(0)->getNumUses(), 2u);
}

TEST(BasicBlockTest, TakeAndReinsert) {
  Module M;
  Function *F = buildAddFunction(M);
  BasicBlock *BB = F->getEntryBlock();
  Instruction *Add = BB->getInst(0);
  auto Owned = BB->take(Add);
  EXPECT_EQ(BB->size(), 1u);
  EXPECT_EQ(Owned->getParent(), nullptr);
  BB->insert(0, std::move(Owned));
  EXPECT_EQ(BB->size(), 2u);
  EXPECT_EQ(Add->getParent(), BB);
  EXPECT_EQ(verifyError(*F), "");
}

TEST(CloneTest, CloneWithinModule) {
  Module M;
  Function *F = buildAddFunction(M);
  Function *G = cloneFunction(*F, M, "f_clone");
  EXPECT_NE(F, G);
  EXPECT_EQ(G->getName(), "f_clone");
  EXPECT_EQ(G->getNumBlocks(), 1u);
  EXPECT_EQ(verifyError(*G), "");
  // Clone must not alias original values.
  EXPECT_NE(G->getArg(0), F->getArg(0));
  EXPECT_EQ(F->getArg(0)->getNumUses(), 1u);
  EXPECT_EQ(G->getArg(0)->getNumUses(), 1u);
}

TEST(CloneTest, CloneModulePreservesText) {
  Module M;
  buildAddFunction(M);
  auto M2 = cloneModule(M);
  EXPECT_EQ(printModule(M), printModule(*M2));
}

TEST(CloneTest, CloneTranslatesIntrinsics) {
  Module M;
  TypeContext &TC = M.getTypes();
  Type *I32 = TC.getIntTy(32);
  Function *Callee = M.getOrInsertIntrinsic(IntrinsicID::SMin, I32);
  Function *F = M.createFunction(TC.getFunctionTy(I32, {I32}), "h");
  BasicBlock *BB = F->addBlock("entry");
  auto *Call = new CallInst(
      Callee, {F->getArg(0), F->getArg(0)}, I32);
  BB->append(std::unique_ptr<Instruction>(Call));
  BB->append(std::make_unique<ReturnInst>(Call, TC.getVoidTy()));

  auto M2 = cloneModule(M);
  Function *H = M2->getFunction("h");
  ASSERT_NE(H, nullptr);
  auto *C = cast<CallInst>(H->getEntryBlock()->getInst(0));
  EXPECT_EQ(C->getCallee()->getIntrinsicID(), IntrinsicID::SMin);
  EXPECT_EQ(C->getCallee()->getParent(), M2.get());
}

TEST(AttributeTest, ToggleFnAttr) {
  Module M;
  Function *F = buildAddFunction(M);
  EXPECT_FALSE(F->hasFnAttr(FnAttr::NoFree));
  F->toggleFnAttr(FnAttr::NoFree);
  EXPECT_TRUE(F->hasFnAttr(FnAttr::NoFree));
  F->toggleFnAttr(FnAttr::NoFree);
  EXPECT_FALSE(F->hasFnAttr(FnAttr::NoFree));
}

TEST(AttributeTest, ParamAttrRendering) {
  ParamAttrs PA;
  PA.NoCapture = true;
  PA.Dereferenceable = 2;
  EXPECT_EQ(PA.str(), " nocapture dereferenceable(2)");
  EXPECT_TRUE(ParamAttrs().empty());
  EXPECT_FALSE(PA.empty());
}

TEST(FunctionTest, AddArgumentExtendsType) {
  Module M;
  Function *F = buildAddFunction(M);
  unsigned Before = F->getFunctionType()->getNumParams();
  Argument *A = F->addArgument(M.getTypes().getPointerTy(), "p");
  EXPECT_EQ(F->getFunctionType()->getNumParams(), Before + 1);
  EXPECT_EQ(A->getIndex(), Before);
  EXPECT_EQ(F->getArg(Before), A);
}

TEST(VerifierTest, AcceptsValidFunction) {
  Module M;
  Function *F = buildAddFunction(M);
  EXPECT_EQ(verifyError(*F), "");
}

TEST(VerifierTest, RejectsUseBeforeDef) {
  Module M;
  TypeContext &TC = M.getTypes();
  Type *I32 = TC.getIntTy(32);
  Function *F = M.createFunction(TC.getFunctionTy(I32, {I32}), "bad");
  BasicBlock *BB = F->addBlock("entry");
  auto *A = new BinaryInst(BinaryInst::Add, F->getArg(0), F->getArg(0));
  auto *B = new BinaryInst(BinaryInst::Add, F->getArg(0), F->getArg(0));
  BB->append(std::unique_ptr<Instruction>(A));
  BB->append(std::unique_ptr<Instruction>(B));
  BB->append(std::make_unique<ReturnInst>(B, TC.getVoidTy()));
  // Make A use B: definition does not dominate the use.
  A->setOperand(1, B);
  EXPECT_NE(verifyError(*F), "");
}

TEST(VerifierTest, RejectsMissingTerminator) {
  Module M;
  TypeContext &TC = M.getTypes();
  Type *I32 = TC.getIntTy(32);
  Function *F = M.createFunction(TC.getFunctionTy(I32, {I32}), "bad2");
  BasicBlock *BB = F->addBlock("entry");
  BB->append(std::unique_ptr<Instruction>(
      new BinaryInst(BinaryInst::Add, F->getArg(0), F->getArg(0))));
  EXPECT_NE(verifyError(*F), "");
}

TEST(VerifierTest, RejectsBadFlags) {
  Module M;
  Function *F = buildAddFunction(M);
  auto *Add = cast<BinaryInst>(F->getEntryBlock()->getInst(0));
  Add->setBinOp(BinaryInst::And); // and with nuw is invalid
  Add->setNUW(true);
  EXPECT_NE(verifyError(*F), "");
}

TEST(VerifierTest, RejectsPhiMismatch) {
  Module M;
  TypeContext &TC = M.getTypes();
  Type *I32 = TC.getIntTy(32);
  Function *F =
      M.createFunction(TC.getFunctionTy(I32, {TC.getIntTy(1)}), "phibad");
  BasicBlock *Entry = F->addBlock("entry");
  BasicBlock *Left = F->addBlock("left");
  BasicBlock *Join = F->addBlock("join");
  Entry->append(std::make_unique<BranchInst>(F->getArg(0), Left, Join,
                                             TC.getVoidTy()));
  Left->append(std::make_unique<BranchInst>(Join, TC.getVoidTy()));
  auto *Phi = new PhiNode(I32);
  // Only one incoming value although join has two predecessors.
  Phi->addIncoming(M.getConstants().getInt(TC.getIntTy(32), 1), Left);
  Join->append(std::unique_ptr<Instruction>(Phi));
  Join->append(std::make_unique<ReturnInst>(Phi, TC.getVoidTy()));
  EXPECT_NE(verifyError(*F), "");
}

TEST(InstructionTest, Predicates) {
  Module M;
  Function *F = buildAddFunction(M);
  Instruction *Add = F->getEntryBlock()->getInst(0);
  Instruction *Ret = F->getEntryBlock()->getInst(1);
  EXPECT_TRUE(Add->isPure());
  EXPECT_FALSE(Add->isTerminator());
  EXPECT_TRUE(Ret->isTerminator());
  EXPECT_FALSE(Add->mayHaveSideEffects());
  EXPECT_EQ(Add->getOpcodeName(), "add");
}

TEST(InstructionTest, PredicateHelpers) {
  EXPECT_EQ(ICmpInst::getInversePredicate(ICmpInst::ULT), ICmpInst::UGE);
  EXPECT_EQ(ICmpInst::getSwappedPredicate(ICmpInst::SLT), ICmpInst::SGT);
  EXPECT_EQ(ICmpInst::getSwappedPredicate(ICmpInst::EQ), ICmpInst::EQ);
  EXPECT_TRUE(ICmpInst::isSigned(ICmpInst::SLE));
  EXPECT_TRUE(ICmpInst::isUnsigned(ICmpInst::UGT));
  EXPECT_FALSE(ICmpInst::isRelational(ICmpInst::NE));
  EXPECT_TRUE(
      ICmpInst::evaluate(ICmpInst::SLT, APInt(8, 0xFF), APInt(8, 0)));
  EXPECT_FALSE(
      ICmpInst::evaluate(ICmpInst::ULT, APInt(8, 0xFF), APInt(8, 0)));
}

TEST(InstructionTest, FlagHelpers) {
  EXPECT_TRUE(BinaryInst::supportsNUWNSW(BinaryInst::Add));
  EXPECT_FALSE(BinaryInst::supportsNUWNSW(BinaryInst::And));
  EXPECT_TRUE(BinaryInst::supportsExact(BinaryInst::LShr));
  EXPECT_TRUE(BinaryInst::isCommutative(BinaryInst::Xor));
  EXPECT_FALSE(BinaryInst::isCommutative(BinaryInst::Sub));
}

TEST(ModuleTest, IntrinsicDeclaration) {
  Module M;
  Function *F =
      M.getOrInsertIntrinsic(IntrinsicID::SMax, M.getTypes().getIntTy(8));
  EXPECT_EQ(F->getName(), "llvm.smax.i8");
  EXPECT_TRUE(F->isDeclaration());
  EXPECT_TRUE(F->isIntrinsic());
  EXPECT_EQ(F, M.getOrInsertIntrinsic(IntrinsicID::SMax,
                                      M.getTypes().getIntTy(8)));
  EXPECT_EQ(F->getFunctionType()->getNumParams(), 2u);
}
