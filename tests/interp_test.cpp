//===- tests/interp_test.cpp - Concrete interpreter semantics tests ---------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The interpreter is the system's semantic ground truth; these tests pin
/// down the LLVM semantics it implements: poison generation and
/// propagation, immediate UB, the byte-addressed memory model, the
/// environment oracle for external calls, and control flow.
///
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

struct RunResult {
  ExecResult R;
  std::unique_ptr<Module> M;
};

/// Runs @f of \p IR on integer arguments \p Args (widths inferred).
RunResult run(const std::string &IR, const std::vector<int64_t> &Args,
              uint64_t TrialSeed = 0) {
  RunResult Out;
  std::string Err;
  Out.M = parseModule(IR, Err);
  EXPECT_NE(Out.M, nullptr) << Err;
  if (!Out.M)
    return Out;
  Function *F = Out.M->getFunction("f");
  EXPECT_NE(F, nullptr);
  std::vector<ConcVal> CArgs;
  for (unsigned I = 0; I != F->getNumArgs(); ++I) {
    unsigned W = F->getArg(I)->getType()->getIntegerBitWidth();
    CArgs.push_back(ConcVal::scalar(APInt(W, (uint64_t)Args[I], true)));
  }
  ExecOptions Opts;
  Opts.TrialSeed = TrialSeed;
  Memory Mem;
  Interpreter Interp(Mem, Opts);
  Out.R = Interp.run(*F, CArgs);
  return Out;
}

int64_t retInt(const RunResult &RR) {
  EXPECT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_FALSE(RR.R.IsVoid);
  EXPECT_FALSE(RR.R.Ret.lane().Poison);
  return RR.R.Ret.lane().Val.getSExtValue();
}

} // namespace

TEST(InterpTest, BasicArithmetic) {
  EXPECT_EQ(retInt(run("define i32 @f(i32 %x, i32 %y) {\n"
                       "  %a = add i32 %x, %y\n  %b = mul i32 %a, 3\n"
                       "  %c = sub i32 %b, 5\n  ret i32 %c\n}",
                       {7, 9})),
            (7 + 9) * 3 - 5);
}

TEST(InterpTest, DivisionSemantics) {
  EXPECT_EQ(retInt(run("define i32 @f(i32 %x) {\n"
                       "  %a = sdiv i32 %x, -2\n  ret i32 %a\n}",
                       {-7})),
            3);
  // Division by zero is immediate UB.
  auto RR = run("define i32 @f(i32 %x) {\n"
                "  %a = udiv i32 1, %x\n  ret i32 %a\n}",
                {0});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
  // Signed overflow on division is UB.
  RR = run("define i8 @f(i8 %x) {\n"
           "  %a = sdiv i8 %x, -1\n  ret i8 %a\n}",
           {-128});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
}

TEST(InterpTest, PoisonGeneratingFlags) {
  // nsw overflow produces poison, not UB.
  auto RR = run("define i8 @f(i8 %x) {\n"
                "  %a = add nsw i8 %x, 1\n  ret i8 %a\n}",
                {127});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
  // Without nsw: defined wraparound.
  EXPECT_EQ(retInt(run("define i8 @f(i8 %x) {\n"
                       "  %a = add i8 %x, 1\n  ret i8 %a\n}",
                       {127})),
            -128);
}

TEST(InterpTest, OversizedShiftIsPoison) {
  auto RR = run("define i8 @f(i8 %x, i8 %s) {\n"
                "  %a = shl i8 %x, %s\n  ret i8 %a\n}",
                {1, 8});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
}

TEST(InterpTest, ExactFlagPoison) {
  auto RR = run("define i8 @f(i8 %x) {\n"
                "  %a = udiv exact i8 %x, 2\n  ret i8 %a\n}",
                {5});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
  EXPECT_EQ(retInt(run("define i8 @f(i8 %x) {\n"
                       "  %a = udiv exact i8 %x, 2\n  ret i8 %a\n}",
                       {6})),
            3);
}

TEST(InterpTest, PoisonPropagation) {
  // Poison flows through arithmetic and icmp into select's condition,
  // poisoning the select.
  auto RR = run("define i8 @f(i8 %x) {\n"
                "  %p = add nsw i8 %x, 1\n"      // poison for x=127
                "  %q = mul i8 %p, 0\n"          // still poison
                "  %c = icmp eq i8 %q, 0\n"      // poison
                "  %r = select i1 %c, i8 1, i8 2\n"
                "  ret i8 %r\n}",
                {127});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
}

TEST(InterpTest, FreezeStopsPoison) {
  auto RR = run("define i8 @f(i8 %x) {\n"
                "  %p = add nsw i8 %x, 1\n"
                "  %fr = freeze i8 %p\n"
                "  ret i8 %fr\n}",
                {127});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_FALSE(RR.R.Ret.lane().Poison);
  // Frozen poison resolves to zero (system-wide policy).
  EXPECT_TRUE(RR.R.Ret.lane().Val.isZero());
}

TEST(InterpTest, BranchOnPoisonIsUB) {
  auto RR = run("define i8 @f(i8 %x) {\n"
                "entry:\n"
                "  %p = add nsw i8 %x, 1\n"
                "  %c = icmp eq i8 %p, 0\n"
                "  br i1 %c, label %a, label %b\n"
                "a:\n  ret i8 1\n"
                "b:\n  ret i8 2\n}",
                {127});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
}

TEST(InterpTest, SelectOnPoisonIsPoison) {
  auto RR = run("define i8 @f(i8 %x) {\n"
                "  %p = add nsw i8 %x, 1\n"
                "  %c = icmp eq i8 %p, 0\n"
                "  %r = select i1 %c, i8 1, i8 2\n"
                "  ret i8 %r\n}",
                {127});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
}

TEST(InterpTest, MemoryRoundTrip) {
  EXPECT_EQ(retInt(run("define i32 @f(i32 %x) {\n"
                       "  %p = alloca i32, align 4\n"
                       "  store i32 %x, ptr %p, align 4\n"
                       "  %v = load i32, ptr %p, align 4\n"
                       "  ret i32 %v\n}",
                       {-123456})),
            -123456);
}

TEST(InterpTest, NullDereferenceIsUB) {
  auto RR = run("define i32 @f(i32 %x) {\n"
                "  %v = load i32, ptr null\n  ret i32 %v\n}",
                {0});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
}

TEST(InterpTest, GEPAndByteAddressing) {
  // Store a 32-bit value, read its second byte (little-endian).
  EXPECT_EQ(retInt(run("define i8 @f() {\n"
                       "  %p = alloca i32, align 4\n"
                       "  store i32 305419896, ptr %p, align 4\n" // 0x12345678
                       "  %q = getelementptr i8, ptr %p, i64 1\n"
                       "  %v = load i8, ptr %q\n"
                       "  ret i8 %v\n}",
                       {})),
            0x56);
}

TEST(InterpTest, OutOfBoundsGepLoadIsUB) {
  auto RR = run("define i8 @f() {\n"
                "  %p = alloca i8, align 1\n"
                "  %q = getelementptr i8, ptr %p, i64 100000\n"
                "  %v = load i8, ptr %q\n"
                "  ret i8 %v\n}",
                {});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
}

TEST(InterpTest, InboundsGepViolationIsPoison) {
  auto RR = run("define i8 @f() {\n"
                "  %p = alloca i8, align 1\n"
                "  %q = getelementptr inbounds i8, ptr %p, i64 50\n"
                "  %c = icmp eq ptr %q, null\n"
                "  %r = select i1 %c, i8 1, i8 2\n"
                "  ret i8 %r\n}",
                {});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
}

TEST(InterpTest, MisalignedAccessIsUB) {
  auto RR = run("define i32 @f() {\n"
                "  %p = alloca i64, align 8\n"
                "  %q = getelementptr i8, ptr %p, i64 1\n"
                "  %v = load i32, ptr %q, align 4\n"
                "  ret i32 %v\n}",
                {});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
}

TEST(InterpTest, UninitializedLoadReadsZero) {
  // Undef resolves to zero (documented policy).
  EXPECT_EQ(retInt(run("define i32 @f() {\n"
                       "  %p = alloca i32, align 4\n"
                       "  %v = load i32, ptr %p, align 4\n"
                       "  ret i32 %v\n}",
                       {})),
            0);
}

TEST(InterpTest, PhiAndLoop) {
  // 10 iterations of acc += i.
  EXPECT_EQ(retInt(run(R"(define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i32 [ 0, %entry ], [ %accnext, %body ]
  %done = icmp uge i32 %i, %n
  br i1 %done, label %exit, label %body
body:
  %accnext = add i32 %acc, %i
  %inext = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
})",
                       {10})),
            45);
}

TEST(InterpTest, InfiniteLoopRunsOutOfFuel) {
  auto RR = run(R"(define i32 @f(i32 %x) {
entry:
  br label %loop
loop:
  br label %loop
})",
                {1});
  EXPECT_EQ(RR.R.Status, ExecStatus::OutOfFuel);
}

TEST(InterpTest, SwitchDispatch) {
  const std::string IR = R"(define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [
    i32 1, label %a
    i32 2, label %b
  ]
a:
  ret i32 10
b:
  ret i32 20
d:
  ret i32 30
})";
  EXPECT_EQ(retInt(run(IR, {1})), 10);
  EXPECT_EQ(retInt(run(IR, {2})), 20);
  EXPECT_EQ(retInt(run(IR, {99})), 30);
}

TEST(InterpTest, UnreachableIsUB) {
  auto RR = run("define i32 @f(i32 %x) {\nentry:\n  unreachable\n}", {0});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
}

TEST(InterpTest, AssumeSemantics) {
  EXPECT_EQ(retInt(run("define i32 @f(i32 %x) {\n"
                       "  %c = icmp sgt i32 %x, 0\n"
                       "  call void @llvm.assume(i1 %c)\n"
                       "  ret i32 %x\n}",
                       {5})),
            5);
  auto RR = run("define i32 @f(i32 %x) {\n"
                "  %c = icmp sgt i32 %x, 0\n"
                "  call void @llvm.assume(i1 %c)\n"
                "  ret i32 %x\n}",
                {-5});
  EXPECT_EQ(RR.R.Status, ExecStatus::UB);
}

TEST(InterpTest, IntrinsicSemantics) {
  auto check = [](const char *Intr, const char *Ty, int64_t A, int64_t B,
                  int64_t Expected) {
    std::string IR = std::string("define ") + Ty + " @f(" + Ty + " %x, " +
                     Ty + " %y) {\n  %r = call " + Ty + " @" + Intr + "(" +
                     Ty + " %x, " + Ty + " %y)\n  ret " + Ty + " %r\n}";
    EXPECT_EQ(retInt(run(IR, {A, B})), Expected) << Intr;
  };
  check("llvm.smax.i8", "i8", -5, 3, 3);
  check("llvm.smin.i8", "i8", -5, 3, -5);
  check("llvm.umax.i8", "i8", -1, 3, -1); // 255 unsigned
  check("llvm.umin.i8", "i8", -1, 3, 3);
  check("llvm.uadd.sat.i8", "i8", 200, 100, -1);  // saturates to 255
  check("llvm.usub.sat.i8", "i8", 3, 7, 0);
  check("llvm.sadd.sat.i8", "i8", 100, 100, 127);
  check("llvm.ssub.sat.i8", "i8", -100, 100, -128);

  EXPECT_EQ(retInt(run("define i16 @f(i16 %x) {\n"
                       "  %r = call i16 @llvm.bswap.i16(i16 %x)\n"
                       "  ret i16 %r\n}",
                       {0x1234})),
            0x3412);
  EXPECT_EQ(retInt(run("define i8 @f(i8 %x) {\n"
                       "  %r = call i8 @llvm.ctpop.i8(i8 %x)\n"
                       "  ret i8 %r\n}",
                       {-1})),
            8);
  EXPECT_EQ(retInt(run("define i8 @f(i8 %x) {\n"
                       "  %r = call i8 @llvm.ctlz.i8(i8 %x, i1 false)\n"
                       "  ret i8 %r\n}",
                       {1})),
            7);
  // ctlz of 0 with is_zero_poison=true is poison.
  auto RR = run("define i8 @f(i8 %x) {\n"
                "  %r = call i8 @llvm.ctlz.i8(i8 %x, i1 true)\n"
                "  ret i8 %r\n}",
                {0});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
  // abs(INT_MIN, true) is poison; abs(INT_MIN, false) wraps.
  RR = run("define i8 @f(i8 %x) {\n"
           "  %r = call i8 @llvm.abs.i8(i8 %x, i1 true)\n  ret i8 %r\n}",
           {-128});
  ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
  EXPECT_TRUE(RR.R.Ret.lane().Poison);
  EXPECT_EQ(retInt(run("define i8 @f(i8 %x) {\n"
                       "  %r = call i8 @llvm.abs.i8(i8 %x, i1 false)\n"
                       "  ret i8 %r\n}",
                       {-128})),
            -128);
  // Funnel shift.
  EXPECT_EQ(retInt(run("define i8 @f(i8 %x, i8 %y) {\n"
                       "  %r = call i8 @llvm.fshl.i8(i8 %x, i8 %y, i8 4)\n"
                       "  ret i8 %r\n}",
                       {0x12, 0x34})) &
                0xFF,
            0x23);
}

TEST(InterpTest, DefinedFunctionCalls) {
  EXPECT_EQ(retInt(run(R"(define i32 @double(i32 %v) {
  %r = shl i32 %v, 1
  ret i32 %r
}

define i32 @f(i32 %x) {
  %a = call i32 @double(i32 %x)
  %b = call i32 @double(i32 %a)
  ret i32 %b
})",
                       {5})),
            20);
}

TEST(InterpTest, ExternalCallOracleIsDeterministic) {
  const std::string IR = R"(declare i32 @mystery(i32)

define i32 @f(i32 %x) {
  %a = call i32 @mystery(i32 %x)
  %b = call i32 @mystery(i32 %x)
  %d = sub i32 %a, %b
  ret i32 %d
})";
  // Same args => same oracle answer within one trial... but @mystery may
  // write memory, so its two calls are sequenced by the call counter and
  // may differ. What must hold: the WHOLE execution is deterministic for
  // a fixed seed.
  auto R1 = run(IR, {3}, /*TrialSeed=*/42);
  auto R2 = run(IR, {3}, /*TrialSeed=*/42);
  ASSERT_EQ(R1.R.Status, ExecStatus::Ok);
  ASSERT_EQ(R2.R.Status, ExecStatus::Ok);
  EXPECT_EQ(R1.R.Ret.lane().Val, R2.R.Ret.lane().Val);
}

TEST(InterpTest, ClobberWritesThroughPointer) {
  // The environment oracle must actually havoc memory reachable from the
  // pointer argument of a may-write external call (@clobber's raison
  // d'etre in the paper's @test9).
  const std::string IR = R"(declare void @clobber(ptr)

define i1 @f() {
  %p = alloca i32, align 4
  store i32 777, ptr %p, align 4
  call void @clobber(ptr %p)
  %v = load i32, ptr %p, align 4
  %c = icmp eq i32 %v, 777
  ret i1 %c
})";
  // For at least some seeds the clobbered value must differ from 777.
  unsigned Changed = 0;
  for (uint64_t Seed = 0; Seed != 8; ++Seed) {
    auto RR = run(IR, {}, Seed);
    ASSERT_EQ(RR.R.Status, ExecStatus::Ok);
    Changed += RR.R.Ret.lane().Val.isZero();
  }
  EXPECT_GT(Changed, 4u);
}

TEST(InterpTest, VectorLanes) {
  std::string Err;
  auto M = parseModule(R"(define i8 @f(<4 x i8> %v) {
  %w = add <4 x i8> %v, <i8 1, i8 2, i8 3, i8 4>
  %r = extractelement <4 x i8> %w, i32 2
  ret i8 %r
})",
                       Err);
  ASSERT_NE(M, nullptr) << Err;
  ConcVal V;
  for (int I = 0; I != 4; ++I)
    V.Lanes.push_back(Lane::of(APInt(8, 10 * I)));
  ExecOptions Opts;
  Memory Mem;
  Interpreter Interp(Mem, Opts);
  ExecResult R = Interp.run(*M->getFunction("f"), {V});
  ASSERT_EQ(R.Status, ExecStatus::Ok);
  EXPECT_EQ(R.Ret.lane().Val.getZExtValue(), 23u); // 20 + 3
}

TEST(InterpTest, ShuffleAndPoisonLanes) {
  std::string Err;
  auto M = parseModule(R"(define i8 @f(<2 x i8> %v) {
  %s = shufflevector <2 x i8> %v, <2 x i8> %v, <2 x i32> <i32 poison, i32 1>
  %a = extractelement <2 x i8> %s, i32 0
  %b = extractelement <2 x i8> %s, i32 1
  %r = or i8 %b, %b
  ret i8 %a
})",
                       Err);
  ASSERT_NE(M, nullptr) << Err;
  ConcVal V;
  V.Lanes.push_back(Lane::of(APInt(8, 5)));
  V.Lanes.push_back(Lane::of(APInt(8, 9)));
  ExecOptions Opts;
  Memory Mem;
  Interpreter Interp(Mem, Opts);
  ExecResult R = Interp.run(*M->getFunction("f"), {V});
  ASSERT_EQ(R.Status, ExecStatus::Ok);
  EXPECT_TRUE(R.Ret.lane().Poison); // lane 0 of the shuffle is poison
}
