//===- tests/fuzz_test.cpp - Fuzzing-loop integration tests ----------------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/BlindMutator.h"
#include "core/FuzzerLoop.h"
#include "corpus/Corpus.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <gtest/gtest.h>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// Runs a campaign on \p Seed IR with only \p Bug injected; returns true
/// if the campaign finds it within \p MaxIters mutants.
bool campaignFinds(BugId Bug, const std::string &SeedIR, uint64_t MaxIters,
                   const std::string &Passes = "O2") {
  FuzzOptions Opts;
  Opts.Bugs.enable(Bug);
  Opts.Passes = Passes;
  Opts.Iterations = MaxIters;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16; // keep iterations fast
  Opts.TV.SolverConflictBudget = 30000;

  FuzzerLoop Fuzzer(Opts);
  auto M = parseOk(SeedIR);
  if (!M || Fuzzer.loadModule(std::move(M)) == 0)
    return false;

  const char *WantIssue = bugInfo(Bug).IssueId;
  bool IsCrash = bugInfo(Bug).IsCrash;
  Fuzzer.run();
  for (const BugRecord &R : Fuzzer.bugs()) {
    if (IsCrash && R.Kind == BugRecord::Crash && R.IssueId == WantIssue)
      return true;
    if (!IsCrash && R.Kind == BugRecord::Miscompile)
      return true;
  }
  return false;
}

const char *seedFor(const char *IssueId) {
  for (const NearMissSeed &S : nearMissSeeds())
    if (std::string(S.IssueId) == IssueId)
      return S.Text;
  return nullptr;
}

} // namespace

class FuzzTest : public ::testing::Test {};

TEST_F(FuzzTest, PreprocessingDropsUnhandledFunctions) {
  // A function whose self-check cannot conclude anything (here: an
  // infinite loop, where every bounded trial runs out of fuel) is dropped,
  // like functions Alive2 cannot process (§III-A). Note that an always-UB
  // function would NOT be dropped: it trivially refines itself.
  auto M = parseOk(R"(
define i32 @ok(i32 %x) {
  %a = add i32 %x, 1
  ret i32 %a
}

define i32 @spin(i32 %x) {
entry:
  br label %loop
loop:
  br label %loop
}
)");
  FuzzOptions Opts;
  FuzzerLoop Fuzzer(Opts);
  unsigned N = Fuzzer.loadModule(std::move(M));
  EXPECT_EQ(N, 1u);
  auto Names = Fuzzer.testableFunctions();
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "ok");
  EXPECT_EQ(Fuzzer.stats().FunctionsDropped, 1u);
}

TEST_F(FuzzTest, MutantRegenerationIsExact) {
  // §III-E: re-running with a logged seed regenerates the mutant
  // byte-for-byte.
  FuzzOptions Opts;
  FuzzerLoop Fuzzer(Opts);
  Fuzzer.loadModule(parseOk(paperListingSeeds()[1]));
  for (uint64_t Seed : {3ull, 17ull, 123456ull}) {
    auto A = Fuzzer.makeMutant(Seed);
    auto B = Fuzzer.makeMutant(Seed);
    EXPECT_EQ(printModule(*A), printModule(*B));
  }
  auto A = Fuzzer.makeMutant(3);
  auto C = Fuzzer.makeMutant(4);
  EXPECT_NE(printModule(*A), printModule(*C));
}

TEST_F(FuzzTest, CleanOptimizerYieldsNoBugs) {
  FuzzOptions Opts;
  Opts.Iterations = 150;
  Opts.TV.ConcreteTrials = 16;
  FuzzerLoop Fuzzer(Opts);
  Fuzzer.loadModule(parseOk(paperListingSeeds()[0]));
  const FuzzStats &S = Fuzzer.run();
  EXPECT_EQ(S.MutantsGenerated, 150u);
  EXPECT_EQ(S.RefinementFailures, 0u);
  EXPECT_EQ(S.Crashes, 0u);
  EXPECT_EQ(S.InvalidMutants, 0u);
}

TEST_F(FuzzTest, CampaignFindsCrashViaMutation) {
  // 52884: the near-miss seed has add nuw (no nsw); a flag-toggle mutation
  // completes Listing 15's trigger.
  EXPECT_TRUE(campaignFinds(BugId::PR52884, seedFor("52884"), 400,
                            "instcombine"));
}

TEST_F(FuzzTest, CampaignFindsMiscompileViaMutation) {
  // 50693: constant mutation must turn -2 into -1.
  EXPECT_TRUE(
      campaignFinds(BugId::PR50693, seedFor("50693"), 600, "instcombine"));
}

TEST_F(FuzzTest, CampaignFindsGVNFlagBug) {
  EXPECT_TRUE(campaignFinds(BugId::PR53218, seedFor("53218"), 600, "gvn"));
}

TEST_F(FuzzTest, CampaignFindsAlignmentCrash) {
  // 64687: the align-randomizing arith mutation hits a non-power-of-two.
  EXPECT_TRUE(campaignFinds(BugId::PR64687, seedFor("64687"), 400,
                            "infer-alignment"));
}

TEST_F(FuzzTest, PristineSeedsDoNotTriggerSeededBugs) {
  // With ALL bugs injected, the un-mutated near-miss corpus must pass its
  // self-checks — discoveries must come from mutants (the paper's setup:
  // the regression suite is green on the buggy compiler).
  for (const NearMissSeed &S : nearMissSeeds()) {
    auto M = parseOk(S.Text);
    ASSERT_NE(M, nullptr);
    FuzzOptions Opts;
    Opts.Iterations = 0;
    Opts.Bugs.enableAll();
    FuzzerLoop Fuzzer(Opts);
    unsigned N = Fuzzer.loadModule(std::move(M));
    EXPECT_GE(N, 1u) << "seed for " << S.IssueId
                     << " was dropped in preprocessing";
  }
}

TEST_F(FuzzTest, SaveDirWritesMutants) {
  // The directory does not exist up front: saveMutant must create it
  // instead of silently dropping the §III-E reproducibility artifacts.
  std::string Dir = ::testing::TempDir() + "alive_mutants/nested";
  std::string Cmd = "rm -rf " + ::testing::TempDir() + "alive_mutants";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);

  FuzzOptions Opts;
  Opts.Iterations = 5;
  Opts.SaveDir = Dir;
  Opts.SaveAll = true;
  FuzzerLoop Fuzzer(Opts);
  Fuzzer.loadModule(parseOk(paperListingSeeds()[0]));
  const FuzzStats &S = Fuzzer.run();
  EXPECT_EQ(S.MutantsSaved, 5u);
  EXPECT_EQ(S.SaveFailures, 0u);

  // Every saved mutant parses back.
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    std::string Path = Dir + "/mutant-" + std::to_string(Seed) + ".ll";
    std::string Err;
    EXPECT_NE(parseModuleFile(Path, Err), nullptr) << Path << ": " << Err;
  }
}

TEST_F(FuzzTest, TimeLimitStopsTheLoop) {
  FuzzOptions Opts;
  Opts.Iterations = 0; // unlimited
  Opts.TimeLimitSeconds = 0.2;
  FuzzerLoop Fuzzer(Opts);
  Fuzzer.loadModule(parseOk(paperListingSeeds()[0]));
  const FuzzStats &S = Fuzzer.run();
  EXPECT_GT(S.MutantsGenerated, 0u);
  EXPECT_LT(S.TotalSeconds, 5.0);
}

//===----------------------------------------------------------------------===//
// The §II structure-blind study machinery.
//===----------------------------------------------------------------------===//

TEST_F(FuzzTest, BlindMutantsAreMostlyUseless) {
  // Reproduce the paper's observation in miniature: most byte-level
  // mutants fail to parse or verify; structured mutants never do.
  RandomGenerator RNG(5);
  const std::string Original = paperListingSeeds()[0];
  unsigned Bad = 0, Boring = 0, Interesting = 0;
  const unsigned N = 300;
  for (unsigned I = 0; I != N; ++I) {
    std::string Mut = blindMutate(Original, RNG);
    switch (classifyBlindMutant(Original, Mut)) {
    case BlindOutcome::ParseError:
    case BlindOutcome::Invalid:
      ++Bad;
      break;
    case BlindOutcome::Boring:
      ++Boring;
      break;
    case BlindOutcome::Interesting:
      ++Interesting;
      break;
    }
  }
  // "the vast majority of mutated LLVM IR files were invalid".
  EXPECT_GT(Bad, N * 6 / 10) << "bad=" << Bad << " boring=" << Boring
                             << " interesting=" << Interesting;
  EXPECT_LT(Interesting, N / 4);
}

TEST_F(FuzzTest, BlindClassifierDetectsBoringRenames) {
  const std::string Original = "define i32 @f(i32 %x) {\n"
                               "  %sum = add i32 %x, 1\n"
                               "  ret i32 %sum\n"
                               "}\n";
  const std::string Renamed = "define i32 @f(i32 %x) {\n"
                              "  %total = add i32 %x, 1\n"
                              "  ret i32 %total\n"
                              "}\n";
  EXPECT_EQ(classifyBlindMutant(Original, Renamed), BlindOutcome::Boring);
  const std::string ChangedConst = "define i32 @f(i32 %x) {\n"
                                   "  %sum = add i32 %x, 2\n"
                                   "  ret i32 %sum\n"
                                   "}\n";
  EXPECT_EQ(classifyBlindMutant(Original, ChangedConst),
            BlindOutcome::Interesting);
}
