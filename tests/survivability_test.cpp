//===- tests/survivability_test.cpp - Campaign survivability tests ----------===//
//
// Part of the alive-mutate reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// End-to-end tests for the survivability layer: the iteration watchdog
/// (step budgets and the wall-clock backstop), in-process signal
/// containment, quarantine backoff, checkpoint/resume byte-equality, the
/// fork-based -isolate mode, and the robust corpus loader.
///
//===----------------------------------------------------------------------===//

#include "core/CampaignEngine.h"
#include "core/Checkpoint.h"
#include "core/RunReport.h"
#include "corpus/CorpusLoader.h"
#include "opt/BugInjection.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <csignal>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

using namespace alive;

namespace {

std::unique_ptr<Module> parseOk(const std::string &Src) {
  std::string Err;
  auto M = parseModule(Src, Err);
  EXPECT_NE(M, nullptr) << Err;
  return M;
}

/// Same corpus the campaign tests fuzz: surfaces PR52884/PR50693 when the
/// matching injected defects are enabled.
const char *TwoBugCorpus = R"(
define i8 @smax_offset(i8 %x) {
  %1 = add nuw i8 50, %x
  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)
  ret i8 %m
}

define i8 @opposite_shifts(i8 %x) {
  %a = shl i8 -2, %x
  %b = lshr i8 %a, %x
  ret i8 %b
}
)";

FuzzOptions twoBugOptions(uint64_t Iterations) {
  FuzzOptions Opts;
  Opts.Passes = "instsimplify,constfold,instcombine,dce";
  Opts.Iterations = Iterations;
  Opts.BaseSeed = 1;
  Opts.TV.ConcreteTrials = 16;
  Opts.Bugs.enable(BugId::PR52884);
  Opts.Bugs.enable(BugId::PR50693);
  return Opts;
}

/// A unique per-test scratch directory, removed on destruction.
struct ScratchDir {
  std::string Path;
  explicit ScratchDir(const std::string &Tag) {
    Path = ::testing::TempDir() + "amr_surv_" + Tag;
    std::filesystem::remove_all(Path);
    std::filesystem::create_directories(Path);
  }
  ~ScratchDir() { std::filesystem::remove_all(Path); }
};

/// Serializes a finished engine's run report and returns the prefix up to
/// the volatile section — the byte-comparable deterministic part.
std::string deterministicReportPart(const CampaignEngine &Engine,
                                    const FuzzOptions &Opts) {
  RunReportConfig RC;
  RC.Tool = "survivability_test";
  RC.Passes = Opts.Passes;
  RC.Iterations = Opts.Iterations;
  RC.BaseSeed = Opts.BaseSeed;
  RC.MaxMutationsPerFunction = Opts.Mutation.MaxMutationsPerFunction;
  std::ostringstream OS;
  writeRunReport(OS, RC, Engine.stats(), Engine.bugs(), Engine.registry());
  std::string R = OS.str();
  size_t Pos = R.find("\"volatile\"");
  EXPECT_NE(Pos, std::string::npos);
  return R.substr(0, Pos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Iteration watchdog: step budgets.
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, StepBudgetConvertsSlowPassIntoTimeout) {
  // test-slow spins until the watchdog trips; without one it would burn
  // its full safety cap every iteration. With a budget every iteration
  // must come back as a recorded Timeout outcome, not a hang and not a
  // bug.
  FuzzOptions Opts;
  Opts.Passes = "test-slow,dce";
  Opts.Iterations = 5;
  Opts.BaseSeed = 1;
  Opts.Survival.StepBudget = 10000;
  FuzzerLoop Loop(Opts);
  ASSERT_TRUE(Loop.configError().empty()) << Loop.configError();
  Loop.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Loop.run();
  EXPECT_EQ(S.MutantsGenerated, 5u);
  EXPECT_EQ(S.Timeouts, 5u);
  // The pipeline never completed, so nothing was optimized or verified.
  EXPECT_EQ(S.Optimized, 0u);
  EXPECT_EQ(S.Verified, 0u);
  EXPECT_EQ(Loop.bugs().size(), 0u);
  const StatRegistry &R = Loop.registry();
  EXPECT_EQ(R.counterValue("survive.timeout.optimize"), 5u);
  EXPECT_EQ(R.counterValue("survive.timeout.reason.step-budget"), 5u);
  EXPECT_EQ(R.counterValue("survive.timeout.reason.wall-clock"), 0u);
}

TEST(SurvivabilityTest, TimeoutWritesForensicsBundle) {
  ScratchDir Dir("timeout_bundles");
  FuzzOptions Opts;
  Opts.Passes = "test-slow,dce";
  Opts.Iterations = 2;
  Opts.Survival.StepBudget = 10000;
  Opts.BugBundleDir = Dir.Path;
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(TwoBugCorpus));
  Loop.run();
  // Timeout bundles are accounted in volatile counters (their placement
  // is machine-dependent under a wall-clock backstop), not in the
  // deterministic BundlesWritten.
  EXPECT_EQ(Loop.registry().counterValue("survive.timeout.bundles"), 2u);
  EXPECT_EQ(Loop.stats().BundlesWritten, 0u);
  unsigned Found = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir.Path))
    if (E.is_directory())
      ++Found;
  EXPECT_EQ(Found, 2u);
}

TEST(SurvivabilityTest, StepBudgetTimeoutsAreWorkerCountInvariant) {
  // Step budgets are deterministic per seed (the budget is re-armed at
  // iteration start and before each refinement check), so the timeout
  // count — unlike wall-clock timeouts — must not vary with -j.
  FuzzOptions Opts = twoBugOptions(60);
  Opts.Survival.StepBudget = 2000;
  uint64_t Timeouts[2];
  std::string Reports[2];
  unsigned I = 0;
  for (unsigned Jobs : {1u, 4u}) {
    CampaignEngine Engine(Opts, Jobs);
    Engine.loadModule(parseOk(TwoBugCorpus));
    const FuzzStats &S = Engine.run();
    ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
    Timeouts[I] = S.Timeouts;
    Reports[I] = deterministicReportPart(Engine, Opts);
    ++I;
  }
  EXPECT_EQ(Timeouts[0], Timeouts[1]);
  EXPECT_EQ(Reports[0], Reports[1]);
}

//===----------------------------------------------------------------------===//
// Iteration watchdog: the wall-clock backstop.
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, WallClockBackstopCancelsHungIteration) {
  // No step budget at all: only the engine's supervisor thread can save
  // the campaign. test-slow's busy-work (1M multiplies per function, two
  // functions) far outlasts a 0.5ms backstop, so at least one iteration
  // must be cut off; the campaign itself must finish.
  FuzzOptions Opts;
  Opts.Passes = "test-slow,dce";
  Opts.Iterations = 4;
  Opts.Survival.WallTimeoutSeconds = 0.0005;
  CampaignEngine Engine(Opts, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  const FuzzStats &S = Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_EQ(S.MutantsGenerated, 4u);
  EXPECT_GT(S.Timeouts, 0u);
  EXPECT_GT(Engine.registry().counterValue(
                "survive.timeout.reason.wall-clock"),
            0u);
}

//===----------------------------------------------------------------------===//
// In-process signal containment.
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, SignalGuardContainsAbortAsCrashBug) {
  // test-abort raises a genuine SIGABRT on functions named abortme*.
  // With the guard on, each iteration records a crash bug and the loop —
  // and this test process — survives.
  FuzzOptions Opts;
  Opts.Passes = "test-abort,dce";
  Opts.Iterations = 3;
  Opts.Survival.SignalGuard = true;
  FuzzerLoop Loop(Opts);
  Loop.loadModule(parseOk(R"(
define i8 @abortme(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
)"));
  const FuzzStats &S = Loop.run();
  EXPECT_EQ(S.MutantsGenerated, 3u);
  EXPECT_EQ(S.Crashes, 3u);
  ASSERT_EQ(Loop.bugs().size(), 3u);
  for (const BugRecord &B : Loop.bugs()) {
    EXPECT_EQ(B.Kind, BugRecord::Crash);
    EXPECT_NE(B.Detail.find("SIGABRT"), std::string::npos) << B.Detail;
    EXPECT_NE(B.Detail.find("contained"), std::string::npos) << B.Detail;
  }
  EXPECT_EQ(Loop.registry().counterValue("survive.contained-signals"), 3u);
}

//===----------------------------------------------------------------------===//
// Quarantine.
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, QuarantineBacksOffRepeatedVerifyTimeouts) {
  // A function whose refinement check reliably outspends the step budget:
  // the load forces the concrete path (no symbolic support) and the
  // 100-instruction chain makes each non-vacuous trial consume interpreter
  // steps. Mutate+optimize stay far under budget (a handful of
  // pass-invocation steps), so the timeouts land in the verify phase and
  // strike the function until the quarantine backs it off. The self-check
  // runs under the same per-function budget and would drop the function
  // outright, so it is off here (the standalone-mutator configuration).
  std::ostringstream IR;
  IR << "define i32 @longchain(ptr %p, i32 %x) {\n"
        "  %v = load i32, ptr %p, align 4\n"
        "  %a0 = add i32 %v, %x\n";
  for (int I = 1; I <= 100; ++I)
    IR << "  %a" << I << " = add i32 %a" << (I - 1) << ", " << I << "\n";
  IR << "  ret i32 %a100\n}\n";
  FuzzOptions Opts;
  Opts.Passes = "dce";
  Opts.Iterations = 40;
  Opts.SkipUnchanged = false; // always reach the verify phase
  Opts.SelfCheckOnLoad = false;
  Opts.TV.ConcreteTrials = 64;
  Opts.Survival.StepBudget = 48;
  Opts.Survival.QuarantineThreshold = 2;
  FuzzerLoop Loop(Opts);
  ASSERT_EQ(Loop.loadModule(parseOk(IR.str())), 1u);
  const FuzzStats &S = Loop.run();
  EXPECT_GT(S.Timeouts, 0u);
  const StatRegistry &R = Loop.registry();
  EXPECT_GT(R.counterValue("survive.timeout.verify"), 0u);
  EXPECT_GT(R.counterValue("survive.quarantine.backoffs"), 0u);
  EXPECT_GT(R.counterValue("survive.quarantine.skips"), 0u);
  // Quarantine elides checks, so the skipped checks cannot have produced
  // verdicts: timeouts + skips + verified cover every reachable check.
  EXPECT_EQ(Loop.bugs().size(), 0u);
}

//===----------------------------------------------------------------------===//
// Checkpoint serialization.
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, WorkerCheckpointRoundTripsExactly) {
  ScratchDir Dir("ckpt_roundtrip");
  WorkerCheckpoint W;
  W.Index = 3;
  W.Lo = 100;
  W.Hi = 200;
  W.Next = 157;
  W.Stats.MutantsGenerated = 57;
  W.Stats.Verified = 41;
  W.Stats.Timeouts = 5;
  // Doubles must survive bit-for-bit (they are stored as IEEE-754 bit
  // patterns, not decimal text): pick values with no short decimal form.
  W.Stats.MutateSeconds = 0.1 + 0.2;
  W.Stats.OptimizeSeconds = 1.0 / 3.0;
  W.Stats.VerifySeconds = 2.718281828459045;
  W.Stats.WorkerSeconds = 3.3333333333333335;
  BugRecord B;
  B.Kind = BugRecord::Miscompile;
  B.FunctionName = "weird \"name\"\nwith newline";
  B.MutantSeed = 123456789;
  B.Detail = "counterexample:\n  x = 7";
  B.IssueId = "50693";
  B.MutantIR = "define i8 @f() {\n  ret i8 0\n}\n";
  B.BundlePath = "/tmp/some bundle";
  W.Bugs.push_back(B);
  W.Counters.push_back({"mutation.gep.applied", 12, false});
  W.Counters.push_back({"survive.timeout.verify", 3, true});

  std::string Err;
  ASSERT_TRUE(writeWorkerCheckpoint(Dir.Path, W, Err)) << Err;
  WorkerCheckpoint R;
  ASSERT_TRUE(readWorkerCheckpoint(Dir.Path, 3, R, Err)) << Err;
  EXPECT_EQ(R.Lo, W.Lo);
  EXPECT_EQ(R.Hi, W.Hi);
  EXPECT_EQ(R.Next, W.Next);
  EXPECT_EQ(R.Stats.MutantsGenerated, W.Stats.MutantsGenerated);
  EXPECT_EQ(R.Stats.Verified, W.Stats.Verified);
  EXPECT_EQ(R.Stats.Timeouts, W.Stats.Timeouts);
  EXPECT_EQ(R.Stats.MutateSeconds, W.Stats.MutateSeconds);
  EXPECT_EQ(R.Stats.OptimizeSeconds, W.Stats.OptimizeSeconds);
  EXPECT_EQ(R.Stats.VerifySeconds, W.Stats.VerifySeconds);
  EXPECT_EQ(R.Stats.WorkerSeconds, W.Stats.WorkerSeconds);
  ASSERT_EQ(R.Bugs.size(), 1u);
  EXPECT_EQ(R.Bugs[0].Kind, B.Kind);
  EXPECT_EQ(R.Bugs[0].FunctionName, B.FunctionName);
  EXPECT_EQ(R.Bugs[0].MutantSeed, B.MutantSeed);
  EXPECT_EQ(R.Bugs[0].Detail, B.Detail);
  EXPECT_EQ(R.Bugs[0].IssueId, B.IssueId);
  EXPECT_EQ(R.Bugs[0].MutantIR, B.MutantIR);
  EXPECT_EQ(R.Bugs[0].BundlePath, B.BundlePath);
  ASSERT_EQ(R.Counters.size(), 2u);
  EXPECT_EQ(R.Counters[0].Name, "mutation.gep.applied");
  EXPECT_EQ(R.Counters[0].Value, 12u);
  EXPECT_FALSE(R.Counters[0].IsVolatile);
  EXPECT_EQ(R.Counters[1].Name, "survive.timeout.verify");
  EXPECT_TRUE(R.Counters[1].IsVolatile);
}

TEST(SurvivabilityTest, CheckpointMetaMismatchIsActionable) {
  ScratchDir Dir("ckpt_meta");
  CheckpointMeta M;
  M.Passes = "O2";
  M.Iterations = 1000;
  M.BaseSeed = 7;
  M.Jobs = 4;
  M.MaxMutationsPerFunction = 3;
  M.ModuleHash = hashModuleText("define void @f() {\n}\n");
  std::string Err;
  ASSERT_TRUE(writeCheckpointMeta(Dir.Path, M, Err)) << Err;
  CheckpointMeta R;
  ASSERT_TRUE(readCheckpointMeta(Dir.Path, R, Err)) << Err;
  EXPECT_TRUE(checkpointMetaMatches(R, M, Err)) << Err;

  CheckpointMeta Wrong = M;
  Wrong.BaseSeed = 8;
  EXPECT_FALSE(checkpointMetaMatches(R, Wrong, Err));
  EXPECT_NE(Err.find("-seed"), std::string::npos) << Err;
  EXPECT_NE(Err.find("7"), std::string::npos) << Err;
  EXPECT_NE(Err.find("8"), std::string::npos) << Err;

  Wrong = M;
  Wrong.Iterations = 500;
  EXPECT_FALSE(checkpointMetaMatches(R, Wrong, Err));
  EXPECT_NE(Err.find("-n"), std::string::npos) << Err;

  Wrong = M;
  Wrong.ModuleHash ^= 1;
  EXPECT_FALSE(checkpointMetaMatches(R, Wrong, Err));
  EXPECT_NE(Err.find("module"), std::string::npos) << Err;

  // A missing directory is an error, not a crash.
  EXPECT_FALSE(readCheckpointMeta(Dir.Path + "/nope", R, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(SurvivabilityTest, TruncatedCheckpointErrorNamesFileAndByteCount) {
  // A torn or partial shard file must produce an error naming the exact
  // file and its byte count — the operator needs to know which artifact
  // to discard, not just that "resume failed".
  ScratchDir Dir("ckpt_truncated");
  WorkerCheckpoint W;
  W.Index = 0;
  W.Lo = 0;
  W.Hi = 50;
  W.Next = 25;
  W.Stats.MutantsGenerated = 25;
  std::string Err;
  ASSERT_TRUE(writeWorkerCheckpoint(Dir.Path, W, Err)) << Err;

  // Truncate mid-file: drop the second half of the JSON.
  std::string Shard = Dir.Path + "/shard-0.json";
  std::string Full;
  {
    std::ifstream In(Shard, std::ios::binary);
    Full.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(Full.size(), 10u);
  size_t Cut = Full.size() / 2;
  {
    std::ofstream Out(Shard, std::ios::binary | std::ios::trunc);
    Out.write(Full.data(), (std::streamsize)Cut);
  }

  WorkerCheckpoint R;
  Err.clear();
  EXPECT_FALSE(readWorkerCheckpoint(Dir.Path, 0, R, Err));
  EXPECT_NE(Err.find("truncated checkpoint"), std::string::npos) << Err;
  EXPECT_NE(Err.find(Shard), std::string::npos) << Err;
  EXPECT_NE(Err.find(std::to_string(Cut) + " bytes"), std::string::npos)
      << Err;

  // Garbage (not a prefix of valid JSON) is reported as corruption, with
  // the same file-and-size identification.
  {
    std::ofstream Out(Shard, std::ios::binary | std::ios::trunc);
    Out << "{\"index\": 0, ]]garbage[[";
  }
  Err.clear();
  EXPECT_FALSE(readWorkerCheckpoint(Dir.Path, 0, R, Err));
  EXPECT_NE(Err.find("corrupt checkpoint"), std::string::npos) << Err;
  EXPECT_NE(Err.find(Shard), std::string::npos) << Err;
}

TEST(SurvivabilityTest, ResumeFailsCleanlyOnTruncatedCheckpoint) {
  // The regression the atomic writer exists to prevent, exercised from
  // the resume path: a mid-file-truncated shard checkpoint must fail the
  // -resume with a config error naming the damage — never parse as
  // half a campaign.
  ScratchDir Dir("ckpt_resume_truncated");
  FuzzOptions Opts = twoBugOptions(50);
  Opts.Survival.CheckpointDir = Dir.Path;
  Opts.Survival.CheckpointInterval = 8;
  CampaignEngine First(Opts, 1);
  First.loadModule(parseOk(TwoBugCorpus));
  First.stopAfterIterations(20);
  First.run();
  ASSERT_TRUE(First.configError().empty()) << First.configError();
  ASSERT_TRUE(First.interrupted());

  std::string Shard = Dir.Path + "/shard-0.json";
  ASSERT_TRUE(std::filesystem::exists(Shard));
  std::string Full;
  {
    std::ifstream In(Shard, std::ios::binary);
    Full.assign(std::istreambuf_iterator<char>(In),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream Out(Shard, std::ios::binary | std::ios::trunc);
    Out.write(Full.data(), (std::streamsize)(Full.size() / 2));
  }

  FuzzOptions ResumeOpts = Opts;
  ResumeOpts.Survival.Resume = true;
  CampaignEngine Engine(ResumeOpts, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  EXPECT_NE(Engine.configError().find("cannot resume"), std::string::npos)
      << Engine.configError();
  EXPECT_NE(Engine.configError().find("truncated checkpoint"),
            std::string::npos)
      << Engine.configError();
}

TEST(SurvivabilityTest, KilledCheckpointWriteLeavesOldOrNewNeverTorn) {
  // A SIGTERM/SIGKILL landing mid-checkpoint-write must leave either the
  // previous snapshot or the new one under shard-<i>.json, byte-exact —
  // never a torn hybrid. The child below rewrites the same shard file in
  // a tight loop, alternating between two known states, until the parent
  // kills it at an arbitrary moment.
  ScratchDir Dir("ckpt_torn_kill");
  ScratchDir RefDir("ckpt_torn_ref");
  WorkerCheckpoint A;
  A.Index = 0;
  A.Lo = 0;
  A.Hi = 1000;
  A.Next = 100;
  BugRecord Pad;
  Pad.Kind = BugRecord::Miscompile;
  Pad.FunctionName = "padder";
  // A large record keeps each write multiple pages long, widening the
  // window a torn write would need to survive in.
  Pad.MutantIR = std::string(64 * 1024, 'x');
  A.Bugs.push_back(Pad);
  WorkerCheckpoint B = A;
  B.Next = 200;

  // Reference bytes for both states, from an undisturbed writer.
  std::string Err;
  ASSERT_TRUE(writeWorkerCheckpoint(RefDir.Path, A, Err)) << Err;
  std::string BytesA = [&] {
    std::ifstream In(RefDir.Path + "/shard-0.json", std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }();
  ASSERT_TRUE(writeWorkerCheckpoint(RefDir.Path, B, Err)) << Err;
  std::string BytesB = [&] {
    std::ifstream In(RefDir.Path + "/shard-0.json", std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }();
  ASSERT_NE(BytesA, BytesB);

  ASSERT_TRUE(writeWorkerCheckpoint(Dir.Path, A, Err)) << Err;
  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    std::string E;
    for (;;) {
      writeWorkerCheckpoint(Dir.Path, B, E);
      writeWorkerCheckpoint(Dir.Path, A, E);
    }
  }
  usleep(50 * 1000);
  kill(Child, SIGKILL);
  int Status = 0;
  waitpid(Child, &Status, 0);

  std::string Bytes = [&] {
    std::ifstream In(Dir.Path + "/shard-0.json", std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }();
  EXPECT_TRUE(Bytes == BytesA || Bytes == BytesB)
      << "torn checkpoint: " << Bytes.size() << " bytes (want "
      << BytesA.size() << " or " << BytesB.size() << ")";
  // And it still parses as a complete snapshot.
  WorkerCheckpoint R;
  EXPECT_TRUE(readWorkerCheckpoint(Dir.Path, 0, R, Err)) << Err;
  EXPECT_TRUE(R.Next == A.Next || R.Next == B.Next);
}

//===----------------------------------------------------------------------===//
// Checkpoint/resume: the tentpole byte-equality guarantee.
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, ResumedCampaignMatchesUninterruptedByteForByte) {
  const uint64_t Iterations = 200;
  ScratchDir Dir("ckpt_resume");

  // Reference: one uninterrupted, checkpoint-free run.
  FuzzOptions Plain = twoBugOptions(Iterations);
  CampaignEngine Ref(Plain, 2);
  Ref.loadModule(parseOk(TwoBugCorpus));
  Ref.run();
  ASSERT_TRUE(Ref.configError().empty()) << Ref.configError();
  ASSERT_GT(Ref.bugs().size(), 0u);
  std::string RefReport = deterministicReportPart(Ref, Plain);

  // Leg 1: same campaign, checkpointing, killed mid-flight (the test hook
  // stops at an iteration boundary exactly like a SIGTERM handler would).
  FuzzOptions Opts = twoBugOptions(Iterations);
  Opts.Survival.CheckpointDir = Dir.Path;
  Opts.Survival.CheckpointInterval = 8;
  CampaignEngine Leg1(Opts, 2);
  Leg1.loadModule(parseOk(TwoBugCorpus));
  Leg1.stopAfterIterations(60);
  Leg1.run();
  ASSERT_TRUE(Leg1.configError().empty()) << Leg1.configError();
  ASSERT_TRUE(Leg1.interrupted());
  ASSERT_LT(Leg1.stats().MutantsGenerated, Iterations);

  // Leg 2: resume from the checkpoint and run to completion.
  FuzzOptions ResumeOpts = Opts;
  ResumeOpts.Survival.Resume = true;
  CampaignEngine Leg2(ResumeOpts, 2);
  Leg2.loadModule(parseOk(TwoBugCorpus));
  Leg2.run();
  ASSERT_TRUE(Leg2.configError().empty()) << Leg2.configError();
  EXPECT_FALSE(Leg2.interrupted());
  EXPECT_EQ(Leg2.stats().MutantsGenerated, Iterations);

  // The acceptance criterion: the resumed run's deterministic report
  // section is byte-identical to the uninterrupted run's.
  EXPECT_EQ(deterministicReportPart(Leg2, Plain), RefReport);
}

TEST(SurvivabilityTest, ResumeRefusesMismatchedConfig) {
  ScratchDir Dir("ckpt_refuse");
  FuzzOptions Opts = twoBugOptions(50);
  Opts.Survival.CheckpointDir = Dir.Path;
  CampaignEngine First(Opts, 1);
  First.loadModule(parseOk(TwoBugCorpus));
  First.stopAfterIterations(10);
  First.run();
  ASSERT_TRUE(First.configError().empty()) << First.configError();

  // Resuming with a different seed must be rejected with a message that
  // names the conflicting flag and both values.
  FuzzOptions Conflict = Opts;
  Conflict.Survival.Resume = true;
  Conflict.BaseSeed = 99;
  CampaignEngine Engine(Conflict, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  EXPECT_NE(Engine.configError().find("cannot resume"), std::string::npos)
      << Engine.configError();
  EXPECT_NE(Engine.configError().find("-seed"), std::string::npos)
      << Engine.configError();

  // Resuming without any checkpoint directory is a config error too.
  FuzzOptions NoDir = twoBugOptions(50);
  NoDir.Survival.Resume = true;
  CampaignEngine NoDirEngine(NoDir, 1);
  NoDirEngine.loadModule(parseOk(TwoBugCorpus));
  NoDirEngine.run();
  EXPECT_FALSE(NoDirEngine.configError().empty());
}

TEST(SurvivabilityTest, CheckpointingRejectsTimeLimitedCampaigns) {
  ScratchDir Dir("ckpt_timelimited");
  FuzzOptions Opts = twoBugOptions(0);
  Opts.TimeLimitSeconds = 0.1;
  Opts.Survival.CheckpointDir = Dir.Path;
  CampaignEngine Engine(Opts, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  EXPECT_NE(Engine.configError().find("iteration-bounded"),
            std::string::npos)
      << Engine.configError();
}

//===----------------------------------------------------------------------===//
// Process isolation (-isolate).
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, IsolateMatchesThreadedDeterministicSection) {
  // With nothing crashing, -isolate must be invisible in the
  // deterministic report: the children checkpoint their shard state and
  // the parent's harvest merges it exactly like the threaded engine.
  const uint64_t Iterations = 60;
  FuzzOptions Plain = twoBugOptions(Iterations);
  CampaignEngine Ref(Plain, 1);
  Ref.loadModule(parseOk(TwoBugCorpus));
  Ref.run();
  ASSERT_TRUE(Ref.configError().empty()) << Ref.configError();
  ASSERT_GT(Ref.bugs().size(), 0u);

  FuzzOptions Iso = twoBugOptions(Iterations);
  Iso.Survival.Isolate = true;
  CampaignEngine Engine(Iso, 2);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_TRUE(Engine.isolateError().empty()) << Engine.isolateError();
  EXPECT_FALSE(Engine.interrupted());
  EXPECT_EQ(deterministicReportPart(Engine, Iso),
            deterministicReportPart(Ref, Plain));
}

TEST(SurvivabilityTest, IsolateContainsCrashingPassAndRestartsShard) {
  // The acceptance scenario: a pass that SIGSEGVs on every iteration
  // (the corpus has a crashme* function). The isolated campaign must
  // complete, record each fatal signal as a crash bug with a forensics
  // bundle, and restart the shard past the crashing seed.
  ScratchDir Bundles("iso_bundles");
  FuzzOptions Opts;
  Opts.Passes = "test-crash,dce";
  Opts.Iterations = 3;
  Opts.BaseSeed = 1;
  Opts.Survival.Isolate = true;
  Opts.BugBundleDir = Bundles.Path;
  CampaignEngine Engine(Opts, 1);
  Engine.loadModule(parseOk(R"(
define i8 @crashme(i8 %x) {
  %r = add i8 %x, 1
  ret i8 %r
}
)"));
  const FuzzStats &S = Engine.run();
  ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
  EXPECT_TRUE(Engine.isolateError().empty()) << Engine.isolateError();
  EXPECT_FALSE(Engine.interrupted());

  // Every seed's optimizer run died on SIGSEGV; all three must be
  // recorded as crash bugs, each with a bundle.
  EXPECT_EQ(S.Crashes, 3u);
  ASSERT_EQ(Engine.bugs().size(), 3u);
  for (const BugRecord &B : Engine.bugs()) {
    EXPECT_EQ(B.Kind, BugRecord::Crash);
    EXPECT_NE(B.Detail.find("SIGSEGV"), std::string::npos) << B.Detail;
    EXPECT_NE(B.Detail.find("isolated shard"), std::string::npos)
        << B.Detail;
    EXPECT_FALSE(B.BundlePath.empty());
    EXPECT_TRUE(std::filesystem::exists(B.BundlePath)) << B.BundlePath;
    EXPECT_FALSE(B.MutantIR.empty());
  }
  const StatRegistry &R = Engine.registry();
  EXPECT_EQ(R.counterValue("survive.isolate.crashes"), 3u);
  EXPECT_GE(R.counterValue("survive.isolate.restarts"), 3u);
  EXPECT_EQ(R.counterValue("bug.crash"), 3u);
}

TEST(SurvivabilityTest, IsolateRejectsIncompatibleConfigs) {
  // Time-limited isolation has no fixed shard partition to restart.
  FuzzOptions Opts = twoBugOptions(0);
  Opts.TimeLimitSeconds = 0.1;
  Opts.Survival.Isolate = true;
  CampaignEngine Engine(Opts, 1);
  Engine.loadModule(parseOk(TwoBugCorpus));
  Engine.run();
  EXPECT_NE(Engine.configError().find("iteration-bounded"),
            std::string::npos)
      << Engine.configError();

  // The flight recorder lives in shard memory; the parent cannot flush it.
  FuzzOptions Trace = twoBugOptions(10);
  Trace.Survival.Isolate = true;
  Trace.TraceEnabled = true;
  CampaignEngine TraceEngine(Trace, 1);
  TraceEngine.loadModule(parseOk(TwoBugCorpus));
  TraceEngine.run();
  EXPECT_FALSE(TraceEngine.configError().empty());
}

//===----------------------------------------------------------------------===//
// Robust corpus loading.
//===----------------------------------------------------------------------===//

TEST(SurvivabilityTest, CorpusLoaderSkipsBrokenFilesAndMerges) {
  ScratchDir Dir("corpus");
  auto WriteFile = [&](const std::string &Name, const std::string &Text) {
    std::ofstream Out(Dir.Path + "/" + Name);
    Out << Text;
  };
  WriteFile("good1.ll", "define i8 @f(i8 %x) {\n  %r = add i8 %x, 1\n"
                        "  ret i8 %r\n}\n");
  WriteFile("empty.ll", "  \n\t\n");
  WriteFile("garbage.ll", "this is not IR at all {{{");
  WriteFile("good2.ll", "define i8 @f(i8 %x) {\n  %r = mul i8 %x, 3\n"
                        "  ret i8 %r\n}\n\n"
                        "define i8 @g(i8 %x) {\n  ret i8 %x\n}\n");

  CorpusLoadResult R = loadCorpus({Dir.Path + "/good1.ll",
                                   Dir.Path + "/empty.ll",
                                   Dir.Path + "/garbage.ll",
                                   Dir.Path + "/good2.ll",
                                   Dir.Path + "/missing.ll"});
  ASSERT_NE(R.M, nullptr);
  EXPECT_EQ(R.FilesLoaded, 2u);
  EXPECT_EQ(R.FilesSkipped, 3u);
  EXPECT_EQ(R.Renamed, 1u);
  EXPECT_EQ(R.Warnings.size(), 3u);
  // Argument order is preserved; the later @f gets the ".2" suffix.
  EXPECT_NE(R.M->getFunction("f"), nullptr);
  EXPECT_NE(R.M->getFunction("f.2"), nullptr);
  EXPECT_NE(R.M->getFunction("g"), nullptr);

  // All-broken input: no module, but no abort either.
  CorpusLoadResult Bad = loadCorpus({Dir.Path + "/empty.ll"});
  EXPECT_EQ(Bad.M, nullptr);
  EXPECT_EQ(Bad.FilesSkipped, 1u);

  // A single good file is passed through unmerged (no clone, no rename).
  CorpusLoadResult One = loadCorpus({Dir.Path + "/good2.ll"});
  ASSERT_NE(One.M, nullptr);
  EXPECT_EQ(One.FilesLoaded, 1u);
  EXPECT_EQ(One.Renamed, 0u);
}

TEST(SurvivabilityTest, MergedCorpusCampaignIsDeterministic) {
  // The merged module behaves like any other module: a 2-file corpus
  // campaign is -j invariant.
  ScratchDir Dir("corpus_campaign");
  {
    std::ofstream A(Dir.Path + "/a.ll");
    A << "define i8 @smax_offset(i8 %x) {\n"
         "  %1 = add nuw i8 50, %x\n"
         "  %m = call i8 @llvm.smax.i8(i8 %1, i8 -124)\n"
         "  ret i8 %m\n}\n";
    std::ofstream B(Dir.Path + "/b.ll");
    B << "define i8 @opposite_shifts(i8 %x) {\n"
         "  %a = shl i8 -2, %x\n"
         "  %b = lshr i8 %a, %x\n"
         "  ret i8 %b\n}\n";
  }
  std::string Reports[2];
  unsigned I = 0;
  for (unsigned Jobs : {1u, 3u}) {
    CorpusLoadResult C =
        loadCorpus({Dir.Path + "/a.ll", Dir.Path + "/b.ll"});
    ASSERT_NE(C.M, nullptr);
    FuzzOptions Opts = twoBugOptions(80);
    CampaignEngine Engine(Opts, Jobs);
    Engine.loadModule(std::move(C.M));
    Engine.run();
    ASSERT_TRUE(Engine.configError().empty()) << Engine.configError();
    Reports[I++] = deterministicReportPart(Engine, Opts);
  }
  EXPECT_EQ(Reports[0], Reports[1]);
}
